"""Per-rule fixture tests for :mod:`repro.lint`.

Every rule gets positive (fires) and negative (stays silent) snippets
written to a throwaway tree — never the live source — plus coverage for
the pragma exemptions, the JSON report schema and the CLI exit codes.
Rules scope by *path shape*, so a fixture file at
``tmp/repro/simrank/engine.py`` is checked exactly like the real one.
"""

from __future__ import annotations

import json
import textwrap
from pathlib import Path

import pytest

from repro.lint import lint_paths, report_json
from repro.lint.cli import main as lint_main


def lint_tree(tmp_path: Path, files: dict, rules=None):
    """Write ``files`` (relpath → source) under ``tmp_path`` and lint them."""
    for relpath, source in files.items():
        target = tmp_path / relpath
        target.parent.mkdir(parents=True, exist_ok=True)
        target.write_text(textwrap.dedent(source))
    return lint_paths([tmp_path], rule_ids=rules, root=tmp_path)


def rule_ids(findings):
    return [finding.rule for finding in findings]


# --------------------------------------------------------------------- #
# Fixture building blocks
# --------------------------------------------------------------------- #
MINI_CONFIG = '''
    from dataclasses import dataclass

    CACHE_KEY_FIELDS = ("method", "decay")

    CACHE_KEY_EXEMPT = ("cache_dir",)

    @dataclass(frozen=True)
    class SimRankConfig:
        method: str = "auto"
        decay: float = 0.6
        cache_dir: str = ""

        def cache_key_fields(self, num_nodes):
            return {"method": self.method, "decay": self.decay}
    '''


# --------------------------------------------------------------------- #
# R1 — cache-key completeness
# --------------------------------------------------------------------- #
class TestR1CacheKeyCompleteness:
    def test_clean_config_passes(self, tmp_path):
        assert lint_tree(tmp_path, {"repro/config.py": MINI_CONFIG},
                         rules=["R1"]) == []

    def test_unkeyed_field_fires(self, tmp_path):
        source = MINI_CONFIG.replace('cache_dir: str = ""',
                                     'cache_dir: str = ""\n'
                                     '        sneaky: int = 0')
        findings = lint_tree(tmp_path, {"repro/config.py": source},
                             rules=["R1"])
        assert rule_ids(findings) == ["R1"]
        assert "sneaky" in findings[0].message

    def test_missing_exempt_set_fires(self, tmp_path):
        source = MINI_CONFIG.replace('CACHE_KEY_EXEMPT = ("cache_dir",)', "")
        findings = lint_tree(tmp_path, {"repro/config.py": source},
                             rules=["R1"])
        assert any("CACHE_KEY_EXEMPT" in finding.message
                   for finding in findings)

    def test_stale_exemption_fires(self, tmp_path):
        source = MINI_CONFIG.replace('("cache_dir",)',
                                     '("cache_dir", "ghost")')
        findings = lint_tree(tmp_path, {"repro/config.py": source},
                             rules=["R1"])
        assert rule_ids(findings) == ["R1"]
        assert "ghost" in findings[0].message

    def test_field_both_keyed_and_exempt_fires(self, tmp_path):
        source = MINI_CONFIG.replace('("cache_dir",)',
                                     '("cache_dir", "decay")')
        findings = lint_tree(tmp_path, {"repro/config.py": source},
                             rules=["R1"])
        assert any("both cache-keyed and CACHE_KEY_EXEMPT" in finding.message
                   for finding in findings)

    def test_declared_tuple_mismatch_fires(self, tmp_path):
        source = MINI_CONFIG.replace('("method", "decay")',
                                     '("method", "decay", "epsilon")')
        findings = lint_tree(tmp_path, {"repro/config.py": source},
                             rules=["R1"])
        assert any("CACHE_KEY_FIELDS" in finding.message
                   for finding in findings)

    def test_other_paths_not_checked(self, tmp_path):
        source = MINI_CONFIG.replace('cache_dir: str = ""',
                                     'cache_dir: str = ""\n'
                                     '        sneaky: int = 0')
        assert lint_tree(tmp_path, {"repro/other.py": source},
                         rules=["R1"]) == []


# --------------------------------------------------------------------- #
# R2 — frozen-config discipline
# --------------------------------------------------------------------- #
class TestR2FrozenConfigDiscipline:
    def test_foreign_object_setattr_fires(self, tmp_path):
        findings = lint_tree(tmp_path, {"repro/bad.py": '''
            def poke(config):
                object.__setattr__(config, "epsilon", 0.5)
            '''}, rules=["R2"])
        assert rule_ids(findings) == ["R2"]

    def test_self_setattr_allowed(self, tmp_path):
        assert lint_tree(tmp_path, {"repro/ok.py": '''
            class Thing:
                def __post_init__(self):
                    object.__setattr__(self, "value", 1)
            '''}, rules=["R2"]) == []

    def test_attribute_assignment_on_config_instance_fires(self, tmp_path):
        findings = lint_tree(tmp_path, {"repro/bad.py": '''
            from repro.config import SimRankConfig

            def tweak():
                config = SimRankConfig(epsilon=0.1)
                config.epsilon = 0.2
                return config
            '''}, rules=["R2"])
        assert rule_ids(findings) == ["R2"]
        assert "with_overrides" in findings[0].message

    def test_assignment_in_defining_module_allowed(self, tmp_path):
        assert lint_tree(tmp_path, {"repro/config.py": '''
            class SimRankConfig:
                pass

            def _internal():
                config = SimRankConfig()
                config.epsilon = 0.2
            '''}, rules=["R2"]) == []

    def test_unrelated_assignment_allowed(self, tmp_path):
        assert lint_tree(tmp_path, {"repro/ok.py": '''
            def fine(thing):
                thing.attribute = 1
            '''}, rules=["R2"]) == []


# --------------------------------------------------------------------- #
# R3 — determinism
# --------------------------------------------------------------------- #
ENGINE = "repro/simrank/engine.py"


class TestR3Determinism:
    def test_numpy_global_rng_fires(self, tmp_path):
        findings = lint_tree(tmp_path, {ENGINE: '''
            import numpy as np

            def push():
                return np.random.rand(3)
            '''}, rules=["R3"])
        assert rule_ids(findings) == ["R3"]

    def test_generator_api_allowed(self, tmp_path):
        assert lint_tree(tmp_path, {ENGINE: '''
            import numpy as np

            def push(seed):
                rng = np.random.default_rng(seed)
                return rng.random(3)
            '''}, rules=["R3"]) == []

    def test_random_module_fires(self, tmp_path):
        findings = lint_tree(tmp_path, {ENGINE: '''
            import random

            def order(items):
                random.shuffle(items)
            '''}, rules=["R3"])
        assert rule_ids(findings) == ["R3"]

    def test_time_time_fires(self, tmp_path):
        findings = lint_tree(tmp_path, {ENGINE: '''
            import time

            def stamp():
                return time.time()
            '''}, rules=["R3"])
        assert rule_ids(findings) == ["R3"]

    def test_set_materialisation_fires(self, tmp_path):
        findings = lint_tree(tmp_path, {ENGINE: '''
            def frontier(nodes):
                order = list(set(nodes))
                for node in {1, 2, 3}:
                    order.append(node)
                return order
            '''}, rules=["R3"])
        assert rule_ids(findings) == ["R3", "R3"]

    def test_sorted_set_allowed(self, tmp_path):
        assert lint_tree(tmp_path, {ENGINE: '''
            def frontier(nodes):
                return sorted(set(nodes))
            '''}, rules=["R3"]) == []

    def test_unscoped_file_not_checked(self, tmp_path):
        assert lint_tree(tmp_path, {"repro/utils/free.py": '''
            import numpy as np

            def anything():
                return np.random.rand(3)
            '''}, rules=["R3"]) == []

    def test_registered_cell_runner_checked(self, tmp_path):
        findings = lint_tree(tmp_path, {"repro/experiments/figx_mod.py": '''
            import numpy as np
            from repro.experiments.registry import experiment

            def my_cell(cell):
                return {"value": float(np.random.rand())}

            def helper():
                return np.random.rand()

            def spec():
                return None

            @experiment("figx", title="t", spec=spec, cell=my_cell)
            def _reduce(spec, cells):
                return cells
            '''}, rules=["R3"])
        # only the registered runner is in scope, not the helper
        assert rule_ids(findings) == ["R3"]
        assert findings[0].line < 7


# --------------------------------------------------------------------- #
# R4 — deprecation containment
# --------------------------------------------------------------------- #
class TestR4DeprecationContainment:
    def test_shim_module_import_fires(self, tmp_path):
        findings = lint_tree(tmp_path, {"repro/models/thing.py": '''
            from repro.simrank.sharded import localpush_simrank_sharded
            '''}, rules=["R4"])
        assert rule_ids(findings) == ["R4"]

    def test_shim_hosts_may_reference_themselves(self, tmp_path):
        assert lint_tree(tmp_path, {"repro/simrank/__init__.py": '''
            from repro.simrank.sharded import localpush_simrank_sharded
            '''}, rules=["R4"]) == []

    def test_deprecated_kwarg_at_call_site_fires(self, tmp_path):
        findings = lint_tree(tmp_path, {"repro/bad.py": '''
            def build(operator):
                return operator(simrank_backend="sharded")
            '''}, rules=["R4"])
        assert rule_ids(findings) == ["R4"]

    def test_forwarding_shim_allowed(self, tmp_path):
        assert lint_tree(tmp_path, {"repro/shim.py": '''
            def run(target, simrank_backend=None):
                return target(simrank_backend=simrank_backend)
            '''}, rules=["R4"]) == []

    def test_experiment_run_without_warning_fires(self, tmp_path):
        findings = lint_tree(tmp_path, {"repro/experiments/figx_mod.py": '''
            def run():
                return 1
            '''}, rules=["R4"])
        assert rule_ids(findings) == ["R4"]
        assert "DeprecationWarning" in findings[0].message

    def test_experiment_run_with_warning_allowed(self, tmp_path):
        assert lint_tree(tmp_path, {"repro/experiments/figx_mod.py": '''
            import warnings

            def run():
                warnings.warn("figx_mod.run() is deprecated",
                              DeprecationWarning, stacklevel=2)
                return 1
            '''}, rules=["R4"]) == []

    def test_experiment_run_via_merge_helper_allowed(self, tmp_path):
        assert lint_tree(tmp_path, {"repro/experiments/figx_mod.py": '''
            from repro.config import merge_experiment_simrank_kwargs

            def run(simrank=None):
                simrank = merge_experiment_simrank_kwargs(simrank)
                return simrank
            '''}, rules=["R4"]) == []


# --------------------------------------------------------------------- #
# R5 — registry consistency
# --------------------------------------------------------------------- #
EXPERIMENT_REGISTRY = '''
    EXPERIMENT_MODULES = {
        "figx": "repro.experiments.figx_mod",
    }
    '''

FIGX_MODULE = '''
    from repro.experiments.registry import experiment

    def spec():
        return None

    @experiment("figx", title="t", spec=spec)
    def _reduce(spec, cells):
        return cells
    '''


class TestR5RegistryConsistency:
    def test_consistent_registry_passes(self, tmp_path):
        assert lint_tree(tmp_path, {
            "repro/experiments/registry.py": EXPERIMENT_REGISTRY,
            "repro/experiments/figx_mod.py": FIGX_MODULE,
        }, rules=["R5"]) == []

    def test_registration_missing_from_table_fires(self, tmp_path):
        findings = lint_tree(tmp_path, {
            "repro/experiments/registry.py":
                EXPERIMENT_REGISTRY.replace("figx", "figy"),
            "repro/experiments/figx_mod.py": FIGX_MODULE,
        }, rules=["R5"])
        assert any("missing from EXPERIMENT_MODULES" in finding.message
                   for finding in findings)

    def test_table_entry_without_registration_fires(self, tmp_path):
        findings = lint_tree(tmp_path, {
            "repro/experiments/registry.py": EXPERIMENT_REGISTRY,
            "repro/experiments/figx_mod.py": '''
                def helper():
                    return 1
                ''',
        }, rules=["R5"])
        assert any("registers nothing" in finding.message
                   or "registers no @experiment" in finding.message
                   for finding in findings)

    def test_missing_spec_builder_fires(self, tmp_path):
        findings = lint_tree(tmp_path, {
            "repro/experiments/registry.py": EXPERIMENT_REGISTRY,
            "repro/experiments/figx_mod.py":
                FIGX_MODULE.replace(", spec=spec", ""),
        }, rules=["R5"])
        assert any("no spec= builder" in finding.message
                   for finding in findings)

    def test_wrong_module_mapping_fires(self, tmp_path):
        findings = lint_tree(tmp_path, {
            "repro/experiments/registry.py":
                EXPERIMENT_REGISTRY.replace("figx_mod", "elsewhere"),
            "repro/experiments/figx_mod.py": FIGX_MODULE,
        }, rules=["R5"])
        assert any("maps 'figx'" in finding.message for finding in findings)

    def test_model_registry_unimported_factory_fires(self, tmp_path):
        findings = lint_tree(tmp_path, {"repro/models/registry.py": '''
            from repro.models.gcn import GCN

            _REGISTRY = {"gcn": GCN, "ghost": Ghost}

            _DEFAULTS = {"gcn": {}, "ghost": {}}
            '''}, rules=["R5"])
        assert rule_ids(findings) == ["R5"]
        assert "ghost" in findings[0].message

    def test_model_defaults_drift_fires(self, tmp_path):
        findings = lint_tree(tmp_path, {"repro/models/registry.py": '''
            from repro.models.gcn import GCN

            _REGISTRY = {"gcn": GCN}

            _DEFAULTS = {"gcn": {}, "stale": {}}
            '''}, rules=["R5"])
        assert any("stale" in finding.message for finding in findings)


# --------------------------------------------------------------------- #
# R6 — config-addressability
# --------------------------------------------------------------------- #
R6_TREE = {
    "repro/config.py": MINI_CONFIG,
    "repro/training/config.py": '''
        from dataclasses import dataclass

        @dataclass(frozen=True)
        class TrainConfig:
            patience: int = 50
        ''',
    "repro/models/widget.py": '''
        class Widget:
            def __init__(self, graph, hidden=64, rng=None):
                self.hidden = hidden
        ''',
}


class TestR6ConfigAddressability:
    def test_valid_grid_keys_pass(self, tmp_path):
        files = dict(R6_TREE)
        files["repro/experiments/figx_mod.py"] = '''
            GRID = {"simrank.decay": (0.4,), "train.patience": (10,),
                    "overrides.hidden": (16,)}
            '''
        assert lint_tree(tmp_path, files, rules=["R6"]) == []

    @pytest.mark.parametrize("key,expected", [
        ("simrank.typo_field", "SimRankConfig has no field"),
        ("train.patiencee", "TrainConfig has no field"),
        ("overrides.hiddenn", "no model __init__"),
    ])
    def test_typo_grid_key_fires(self, tmp_path, key, expected):
        files = dict(R6_TREE)
        files["repro/experiments/figx_mod.py"] = f'''
            GRID = {{"{key}": (1,)}}
            '''
        findings = lint_tree(tmp_path, files, rules=["R6"])
        assert rule_ids(findings) == ["R6"]
        assert expected in findings[0].message

    def test_infra_modules_not_scanned(self, tmp_path):
        files = dict(R6_TREE)
        files["repro/experiments/engine.py"] = '''
            GRID = {"simrank.typo_field": (1,)}
            '''
        assert lint_tree(tmp_path, files, rules=["R6"]) == []


# --------------------------------------------------------------------- #
# R7 — mutable defaults / bare except
# --------------------------------------------------------------------- #
class TestR7MutableDefaultsBareExcept:
    @pytest.mark.parametrize("default", ["[]", "{}", "set()", "list()",
                                         "dict()", "[x for x in ()]"])
    def test_mutable_default_fires(self, tmp_path, default):
        findings = lint_tree(
            tmp_path,
            {"repro/bad.py": f"def f(a={default}):\n    return a\n"},
            rules=["R7"])
        assert rule_ids(findings) == ["R7"]

    @pytest.mark.parametrize("default", ["None", "()", "0", '""',
                                         "frozenset()"])
    def test_immutable_default_allowed(self, tmp_path, default):
        assert lint_tree(
            tmp_path,
            {"repro/ok.py": f"def f(a={default}):\n    return a\n"},
            rules=["R7"]) == []

    def test_keyword_only_mutable_default_fires(self, tmp_path):
        findings = lint_tree(
            tmp_path,
            {"repro/bad.py": "def f(*, a=[]):\n    return a\n"},
            rules=["R7"])
        assert rule_ids(findings) == ["R7"]

    def test_bare_except_fires(self, tmp_path):
        findings = lint_tree(tmp_path, {"repro/bad.py": '''
            def f():
                try:
                    return 1
                except:
                    return 2
            '''}, rules=["R7"])
        assert rule_ids(findings) == ["R7"]

    def test_typed_except_allowed(self, tmp_path):
        assert lint_tree(tmp_path, {"repro/ok.py": '''
            def f():
                try:
                    return 1
                except ValueError:
                    return 2
            '''}, rules=["R7"]) == []

    def test_outside_repro_not_checked(self, tmp_path):
        assert lint_tree(
            tmp_path,
            {"scripts/tool.py": "def f(a=[]):\n    return a\n"},
            rules=["R7"]) == []


# --------------------------------------------------------------------- #
# R8 — API-surface import hygiene
# --------------------------------------------------------------------- #
class TestR8ApiSurfaceImports:
    def test_internal_import_in_examples_fires(self, tmp_path):
        findings = lint_tree(tmp_path, {"examples/demo.py": '''
            from repro.simrank.engine import localpush_engine
            '''}, rules=["R8"])
        assert rule_ids(findings) == ["R8"]

    def test_public_surface_allowed(self, tmp_path):
        assert lint_tree(tmp_path, {"examples/demo.py": '''
            from repro import TrainConfig
            from repro.api import run
            from repro.config import SimRankConfig
            from repro.experiments import run_experiment
            import numpy as np
            '''}, rules=["R8"]) == []

    def test_benchmarks_checked_too(self, tmp_path):
        findings = lint_tree(tmp_path, {"benchmarks/bench_demo.py": '''
            from repro.training.config import TrainConfig
            '''}, rules=["R8"])
        assert rule_ids(findings) == ["R8"]

    def test_spec_builder_using_internals_fires(self, tmp_path):
        findings = lint_tree(tmp_path, {"repro/experiments/figx_mod.py": '''
            from repro.experiments.registry import experiment
            from repro.simrank.engine import localpush_engine

            def spec():
                return localpush_engine

            @experiment("figx", title="t", spec=spec)
            def _reduce(spec, cells):
                return cells
            '''}, rules=["R8"])
        assert rule_ids(findings) == ["R8"]
        assert "spec builder" in findings[0].message

    def test_spec_builder_on_surface_passes(self, tmp_path):
        assert lint_tree(tmp_path, {"repro/experiments/figx_mod.py": '''
            from repro.config import ExperimentSpec, RunSpec
            from repro.experiments.registry import experiment
            from repro.training.config import TrainConfig

            def spec():
                return ExperimentSpec(name="figx",
                                      base=RunSpec(train=TrainConfig()))

            @experiment("figx", title="t", spec=spec)
            def _reduce(spec, cells):
                return cells
            '''}, rules=["R8"]) == []

    def test_cell_runner_may_use_internals(self, tmp_path):
        assert lint_tree(tmp_path, {"repro/experiments/figx_mod.py": '''
            from repro.experiments.registry import experiment
            from repro.simrank.exact import exact_simrank

            def spec():
                return None

            def my_cell(cell):
                return {"value": exact_simrank}

            @experiment("figx", title="t", spec=spec, cell=my_cell)
            def _reduce(spec, cells):
                return cells
            '''}, rules=["R8"]) == []


# --------------------------------------------------------------------- #
# Pragmas
# --------------------------------------------------------------------- #
class TestPragmas:
    def test_line_pragma_suppresses_named_rule(self, tmp_path):
        assert lint_tree(tmp_path, {ENGINE: '''
            import time

            def stamp():
                return time.time()  # repro-lint: disable=R3
            '''}, rules=["R3"]) == []

    def test_line_pragma_is_rule_specific(self, tmp_path):
        findings = lint_tree(tmp_path, {ENGINE: '''
            import time

            def stamp():
                return time.time()  # repro-lint: disable=R7
            '''}, rules=["R3"])
        assert rule_ids(findings) == ["R3"]

    def test_line_pragma_only_covers_its_line(self, tmp_path):
        findings = lint_tree(tmp_path, {ENGINE: '''
            import time

            def stamp():  # repro-lint: disable=R3
                return time.time()
            '''}, rules=["R3"])
        assert rule_ids(findings) == ["R3"]

    def test_file_pragma_suppresses_whole_file(self, tmp_path):
        assert lint_tree(tmp_path, {ENGINE: '''
            # repro-lint: disable-file=R3 — fixture exercises the pragma
            import time

            def stamp():
                return time.time()

            def stamp_again():
                return time.time()
            '''}, rules=["R3"]) == []

    def test_disable_all(self, tmp_path):
        assert lint_tree(tmp_path, {ENGINE: '''
            import time

            def stamp():
                return time.time()  # repro-lint: disable=all
            '''}, rules=["R3"]) == []

    def test_comma_separated_rule_list(self, tmp_path):
        assert lint_tree(tmp_path, {"repro/bad.py": '''
            def f(a=[]):  # repro-lint: disable=R2, R7
                return a
            '''}, rules=["R7"]) == []


# --------------------------------------------------------------------- #
# Framework: parse failures, JSON schema, CLI
# --------------------------------------------------------------------- #
class TestFramework:
    def test_syntax_error_reported_not_fatal(self, tmp_path):
        findings = lint_tree(tmp_path, {
            "repro/broken.py": "def half(:\n",
            "repro/ok.py": "x = 1\n",
        })
        assert rule_ids(findings) == ["PARSE"]
        assert findings[0].path == "repro/broken.py"

    def test_unknown_rule_id_raises(self, tmp_path):
        with pytest.raises(KeyError):
            lint_tree(tmp_path, {"repro/ok.py": "x = 1\n"}, rules=["R99"])

    def test_json_report_schema(self, tmp_path):
        findings = lint_tree(
            tmp_path,
            {"repro/bad.py": "def f(a=[]):\n    return a\n"},
            rules=["R7"])
        payload = json.loads(report_json(findings))
        assert payload["version"] == 1
        assert payload["counts"] == {"error": 1, "warning": 0}
        (record,) = payload["findings"]
        assert set(record) == {"rule", "severity", "path", "line", "message"}
        assert record["rule"] == "R7"
        assert record["severity"] == "error"
        assert record["path"] == "repro/bad.py"
        assert isinstance(record["line"], int)

    def test_cli_exit_codes_and_output(self, tmp_path, capsys):
        bad = tmp_path / "repro" / "bad.py"
        bad.parent.mkdir(parents=True)
        bad.write_text("def f(a=[]):\n    return a\n")
        assert lint_main([str(tmp_path), "--root", str(tmp_path)]) == 1
        out = capsys.readouterr().out
        assert "[R7]" in out and "1 error(s)" in out

        bad.write_text("def f(a=None):\n    return a\n")
        assert lint_main([str(tmp_path), "--root", str(tmp_path)]) == 0

    def test_cli_json_output_file(self, tmp_path, capsys):
        source = tmp_path / "repro" / "ok.py"
        source.parent.mkdir(parents=True)
        source.write_text("x = 1\n")
        report = tmp_path / "report.json"
        assert lint_main([str(tmp_path), "--root", str(tmp_path),
                          "--format=json", "--output", str(report)]) == 0
        payload = json.loads(report.read_text())
        assert payload["findings"] == []
        # The log still gets the human summary when the report goes to a file.
        assert "0 error(s)" in capsys.readouterr().out

    def test_cli_rule_selection(self, tmp_path):
        bad = tmp_path / "repro" / "bad.py"
        bad.parent.mkdir(parents=True)
        bad.write_text("def f(a=[]):\n    return a\n")
        assert lint_main([str(tmp_path), "--root", str(tmp_path),
                          "--rules", "R3"]) == 0
        assert lint_main([str(tmp_path), "--root", str(tmp_path),
                          "--rules", "R7"]) == 1

    def test_cli_unknown_rule_is_usage_error(self, tmp_path, capsys):
        with pytest.raises(SystemExit) as excinfo:
            lint_main([str(tmp_path), "--rules", "R99"])
        assert excinfo.value.code == 2
        capsys.readouterr()

    def test_cli_missing_path_is_usage_error(self, tmp_path, capsys):
        with pytest.raises(SystemExit) as excinfo:
            lint_main([str(tmp_path / "nope")])
        assert excinfo.value.code == 2
        capsys.readouterr()

    def test_cli_list_rules(self, capsys):
        assert lint_main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        for rule_id in ("R1", "R2", "R3", "R4", "R5", "R6", "R7", "R8"):
            assert rule_id in out
