"""Unit tests for the resumable experiment ArtifactStore."""

import json

import pytest

from repro.config import ExperimentSpec, RunSpec
from repro.errors import ArtifactError
from repro.experiments.store import (
    STORE_FORMAT_VERSION,
    ArtifactStore,
    get_artifact_store,
    runner_name,
)


def demo_runner(cell):  # pragma: no cover - identity, never executed
    return {}


def other_runner(cell):  # pragma: no cover - identity, never executed
    return {}


@pytest.fixture()
def spec():
    return ExperimentSpec(
        name="demo", base=RunSpec(model="sigma", dataset="texas", repeats=1),
        grid=({"dataset": "texas"}, {"dataset": "cora"}),
        params={"num_pairs": 10})


@pytest.fixture()
def store(tmp_path):
    return ArtifactStore(tmp_path / "store")


class TestKeys:
    def test_key_deterministic(self, store, spec):
        cells = spec.cells()
        assert store.key_for(cells[0], demo_runner) == store.key_for(
            cells[0], demo_runner)

    def test_key_varies_with_cell(self, store, spec):
        first, second = spec.cells()
        assert store.key_for(first, demo_runner) != store.key_for(
            second, demo_runner)

    def test_key_varies_with_runner(self, store, spec):
        cell = spec.cells()[0]
        assert store.key_for(cell, demo_runner) != store.key_for(
            cell, other_runner)

    def test_key_ignores_experiment_name_and_reduction(self, store, spec):
        """Two experiments sharing cells (fig2/table2) share records."""
        relabelled = spec.with_overrides(name="other", reduction={"bins": 9})
        assert store.key_for(spec.cells()[0], demo_runner) == store.key_for(
            relabelled.cells()[0], demo_runner)

    def test_runner_name_is_qualified(self):
        assert runner_name(demo_runner).endswith(
            "test_experiment_store.demo_runner")


class TestCellRoundTrip:
    def test_store_then_load(self, store, spec):
        cell = spec.cells()[0]
        key = store.key_for(cell, demo_runner)
        store.store_cell(key, cell, demo_runner, {"value": 1.5},
                         experiment="demo", seconds=0.25)
        record = store.load_cell(key, cell, demo_runner)
        assert record == {"value": 1.5}
        assert (store.hits, store.misses, store.stores) == (1, 0, 1)
        assert len(store) == 1

    def test_missing_key_is_miss(self, store, spec):
        cell = spec.cells()[0]
        assert store.load_cell("0" * 32, cell, demo_runner) is None
        assert store.misses == 1

    def test_corrupt_record_evicted(self, store, spec):
        cell = spec.cells()[0]
        key = store.key_for(cell, demo_runner)
        store.store_cell(key, cell, demo_runner, {"value": 1}, experiment="demo")
        store.cell_path(key).write_text("{ not json")
        assert store.load_cell(key, cell, demo_runner) is None
        assert store.evictions == 1
        assert not store.cell_path(key).exists()

    def test_version_mismatch_evicted(self, store, spec):
        cell = spec.cells()[0]
        key = store.key_for(cell, demo_runner)
        store.store_cell(key, cell, demo_runner, {"value": 1}, experiment="demo")
        payload = json.loads(store.cell_path(key).read_text())
        payload["version"] = STORE_FORMAT_VERSION + 1
        store.cell_path(key).write_text(json.dumps(payload))
        assert store.load_cell(key, cell, demo_runner) is None
        assert store.evictions == 1

    def test_parameter_mismatch_evicted(self, store, spec):
        """A hand-edited or colliding file never serves a different cell."""
        first, second = spec.cells()
        key = store.key_for(first, demo_runner)
        store.store_cell(key, first, demo_runner, {"value": 1}, experiment="demo")
        # Same file requested for a different cell under the same key.
        assert store.load_cell(key, second, demo_runner) is None
        assert store.evictions == 1

    def test_runner_mismatch_evicted(self, store, spec):
        cell = spec.cells()[0]
        key = store.key_for(cell, demo_runner)
        store.store_cell(key, cell, demo_runner, {"value": 1}, experiment="demo")
        assert store.load_cell(key, cell, other_runner) is None
        assert store.evictions == 1

    def test_clear_removes_everything(self, store, spec):
        for cell in spec.cells():
            key = store.key_for(cell, demo_runner)
            store.store_cell(key, cell, demo_runner, {}, experiment="demo")
        assert store.clear() == 2
        assert len(store) == 0


class TestManifest:
    def test_manifest_lists_entries(self, store, spec):
        cell = spec.cells()[0]
        key = store.key_for(cell, demo_runner)
        store.store_cell(key, cell, demo_runner, {"v": 1}, experiment="demo")
        index = json.loads((store.directory / "experiment-store-index.json")
                           .read_text())
        assert key in index["entries"]
        assert index["entries"][key]["experiment"] == "demo"

    def test_manifest_adopts_foreign_files(self, store, spec, tmp_path):
        """Records written by another process are reconciled on store."""
        cells = spec.cells()
        key0 = store.key_for(cells[0], demo_runner)
        store.store_cell(key0, cells[0], demo_runner, {}, experiment="demo")
        (store.directory / "experiment-store-index.json").unlink()
        key1 = store.key_for(cells[1], demo_runner)
        store.store_cell(key1, cells[1], demo_runner, {}, experiment="demo")
        index = json.loads((store.directory / "experiment-store-index.json")
                           .read_text())
        assert set(index["entries"]) == {key0, key1}


class TestArtifacts:
    def test_append_accumulates_records(self, store):
        store.append_artifact("demo", {"rows": [1]})
        store.append_artifact("demo", {"rows": [2]})
        records = json.loads(store.artifact_path("demo").read_text())
        assert [r["rows"] for r in records] == [[1], [2]]
        assert all(r["artifact_version"] == STORE_FORMAT_VERSION
                   for r in records)

    def test_corrupt_artifact_preserved_not_overwritten(self, store):
        store.artifact_path("demo").write_text("{ not a list")
        store.append_artifact("demo", {"rows": []})
        assert store.artifact_path("demo").with_suffix(".json.corrupt").exists()
        records = json.loads(store.artifact_path("demo").read_text())
        assert len(records) == 1


class TestRegistry:
    def test_get_artifact_store_memoised_per_directory(self, tmp_path):
        first = get_artifact_store(tmp_path / "a")
        again = get_artifact_store(tmp_path / "a")
        other = get_artifact_store(tmp_path / "b")
        assert first is again
        assert first is not other

    def test_unwritable_directory_raises(self, tmp_path):
        blocker = tmp_path / "file"
        blocker.write_text("")
        with pytest.raises(ArtifactError):
            ArtifactStore(blocker / "store")
