"""Tests for homophily measures."""

import numpy as np
import pytest

from repro.errors import GraphError
from repro.graphs.graph import Graph
from repro.graphs.homophily import (
    class_insensitive_edge_homophily,
    edge_homophily,
    heterophily_extent,
    node_homophily,
)


def _two_block_graph(cross_only: bool) -> Graph:
    """4-node graph: labels [0,0,1,1]; either all-cross or all-within edges."""
    if cross_only:
        edges = [(0, 2), (0, 3), (1, 2), (1, 3)]
    else:
        edges = [(0, 1), (2, 3)]
    return Graph.from_edges(4, edges, labels=np.array([0, 0, 1, 1]),
                            features=np.eye(4))


class TestNodeHomophily:
    def test_perfect_heterophily(self):
        assert node_homophily(_two_block_graph(cross_only=True)) == pytest.approx(0.0)

    def test_perfect_homophily(self):
        assert node_homophily(_two_block_graph(cross_only=False)) == pytest.approx(1.0)

    def test_requires_labels(self):
        graph = Graph.from_edges(3, [(0, 1)])
        with pytest.raises(GraphError):
            node_homophily(graph)

    def test_mixed_graph(self, tiny_graph):
        # Only the bridge edge (2, 3) crosses classes.
        value = node_homophily(tiny_graph)
        assert 0.5 < value < 1.0

    def test_matches_paper_equation(self, small_heterophilous_graph):
        graph = small_heterophilous_graph
        labels = graph.labels
        manual = []
        for node in range(graph.num_nodes):
            neighbors = graph.neighbors(node)
            if neighbors.size == 0:
                continue
            manual.append(np.mean(labels[neighbors] == labels[node]))
        assert node_homophily(graph) == pytest.approx(float(np.mean(manual)))


class TestEdgeHomophily:
    def test_perfect_heterophily(self):
        assert edge_homophily(_two_block_graph(cross_only=True)) == pytest.approx(0.0)

    def test_perfect_homophily(self):
        assert edge_homophily(_two_block_graph(cross_only=False)) == pytest.approx(1.0)

    def test_tiny_graph_value(self, tiny_graph):
        assert edge_homophily(tiny_graph) == pytest.approx(6 / 7)


class TestClassInsensitiveHomophily:
    def test_in_unit_interval(self, small_heterophilous_graph):
        value = class_insensitive_edge_homophily(small_heterophilous_graph)
        assert 0.0 <= value <= 1.0

    def test_heterophilous_lower_than_homophilous(self, small_heterophilous_graph,
                                                  small_homophilous_graph):
        hetero = class_insensitive_edge_homophily(small_heterophilous_graph)
        homo = class_insensitive_edge_homophily(small_homophilous_graph)
        assert hetero < homo


def test_heterophily_extent_complements_node_homophily(tiny_graph):
    assert heterophily_extent(tiny_graph) == pytest.approx(1.0 - node_homophily(tiny_graph))
