"""Tier-1 gate: the merged tree is ``repro.lint``-clean.

The first test is the enforcement point — every rule over every checked
tree, zero findings.  The mutation tests then prove the gate has teeth:
they copy *live* sources into a scratch tree, re-introduce the exact
regressions the rules were written against, and assert the rule fires.
A refactor that accidentally lobotomises R1 or R3 fails here even though
the clean tree still passes.
"""

from __future__ import annotations

import shutil
from pathlib import Path

from repro.lint import all_rules, lint_paths

REPO_ROOT = Path(__file__).resolve().parents[1]
CHECKED_TREES = ("src", "benchmarks", "examples")


def lint_repo(rule_ids=None):
    paths = [REPO_ROOT / tree for tree in CHECKED_TREES]
    return lint_paths([path for path in paths if path.exists()],
                      rule_ids=rule_ids, root=REPO_ROOT)


def copy_live(tmp_path: Path, relpath: str) -> Path:
    target = tmp_path / relpath
    target.parent.mkdir(parents=True, exist_ok=True)
    shutil.copyfile(REPO_ROOT / "src" / relpath, target)
    return target


def test_tree_is_lint_clean():
    findings = lint_repo()
    assert findings == [], "\n" + "\n".join(
        finding.render() for finding in findings)


def test_all_rules_are_loaded():
    assert {rule.id for rule in all_rules()} == {
        "R1", "R2", "R3", "R4", "R5", "R6", "R7", "R8"}


def test_r1_fires_when_live_config_gains_unkeyed_field(tmp_path):
    """Regression: adding a SimRankConfig field without deciding whether it
    is cache-keyed must trip R1 — on the real config.py, not a fixture."""
    target = copy_live(tmp_path, "repro/config.py")
    source = target.read_text()
    anchor = "cache_max_bytes: Optional[int] = None"
    assert anchor in source
    target.write_text(source.replace(
        anchor, anchor + "\n    brand_new_knob: int = 0", 1))
    findings = lint_paths([tmp_path], rule_ids=["R1"], root=tmp_path)
    assert [finding.rule for finding in findings] == ["R1"]
    assert "brand_new_knob" in findings[0].message


def test_r1_clean_on_unmodified_live_config(tmp_path):
    copy_live(tmp_path, "repro/config.py")
    assert lint_paths([tmp_path], rule_ids=["R1"], root=tmp_path) == []


def test_r3_fires_on_global_rng_in_live_engine(tmp_path):
    """Regression: a ``np.random`` call sneaking into the LocalPush engine
    (the bit-identical executor guarantee's core) must trip R3."""
    target = copy_live(tmp_path, "repro/simrank/engine.py")
    target.write_text(target.read_text() +
                      "\n\ndef _mutant():\n    return np.random.rand(3)\n")
    findings = lint_paths([tmp_path], rule_ids=["R3"], root=tmp_path)
    assert [finding.rule for finding in findings] == ["R3"]


def test_r3_clean_on_unmodified_live_engine(tmp_path):
    copy_live(tmp_path, "repro/simrank/engine.py")
    assert lint_paths([tmp_path], rule_ids=["R3"], root=tmp_path) == []
