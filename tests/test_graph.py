"""Tests for the Graph container."""

import numpy as np
import pytest
import scipy.sparse as sp

from repro.errors import GraphError
from repro.graphs.graph import Graph


class TestConstruction:
    def test_from_edges_basic(self, tiny_graph):
        assert tiny_graph.num_nodes == 6
        assert tiny_graph.num_edges == 7
        assert tiny_graph.num_directed_edges == 14

    def test_adjacency_is_symmetric(self, tiny_graph):
        adjacency = tiny_graph.adjacency
        assert (adjacency != adjacency.T).nnz == 0

    def test_duplicate_edges_collapse(self):
        graph = Graph.from_edges(3, [(0, 1), (1, 0), (0, 1)])
        assert graph.num_edges == 1
        assert graph.adjacency.max() == 1.0

    def test_self_loops_removed(self):
        graph = Graph.from_edges(3, [(0, 0), (0, 1)])
        assert graph.num_edges == 1

    def test_empty_edge_list(self):
        graph = Graph.from_edges(4, [])
        assert graph.num_edges == 0
        assert graph.num_nodes == 4

    def test_out_of_range_edge_raises(self):
        with pytest.raises(GraphError):
            Graph.from_edges(3, [(0, 5)])

    def test_bad_edge_shape_raises(self):
        with pytest.raises(GraphError):
            Graph.from_edges(3, np.array([[0, 1, 2]]))

    def test_rectangular_adjacency_raises(self):
        with pytest.raises(GraphError):
            Graph(sp.csr_matrix(np.zeros((2, 3))))

    def test_asymmetric_adjacency_raises(self):
        matrix = np.zeros((3, 3))
        matrix[0, 1] = 1.0
        with pytest.raises(GraphError):
            Graph(sp.csr_matrix(matrix))

    def test_negative_weight_raises(self):
        matrix = np.zeros((2, 2))
        matrix[0, 1] = matrix[1, 0] = -1.0
        with pytest.raises(GraphError):
            Graph(sp.csr_matrix(matrix))

    def test_feature_shape_mismatch_raises(self):
        with pytest.raises(GraphError):
            Graph.from_edges(3, [(0, 1)], features=np.zeros((2, 4)))

    def test_label_length_mismatch_raises(self):
        with pytest.raises(GraphError):
            Graph.from_edges(3, [(0, 1)], labels=np.array([0, 1]))

    def test_from_networkx(self):
        import networkx as nx

        nx_graph = nx.path_graph(4)
        graph = Graph.from_networkx(nx_graph)
        assert graph.num_nodes == 4
        assert graph.num_edges == 3


class TestProperties:
    def test_degrees(self, tiny_graph):
        expected = np.array([2, 2, 3, 3, 2, 2], dtype=float)
        np.testing.assert_allclose(tiny_graph.degrees, expected)

    def test_average_degree(self, tiny_graph):
        assert tiny_graph.average_degree == pytest.approx(14 / 6)

    def test_num_classes(self, tiny_graph):
        assert tiny_graph.num_classes == 2

    def test_num_features(self, tiny_graph):
        assert tiny_graph.num_features == 2

    def test_num_classes_without_labels_raises(self):
        graph = Graph.from_edges(3, [(0, 1)])
        with pytest.raises(GraphError):
            _ = graph.num_classes

    def test_neighbors(self, tiny_graph):
        assert set(tiny_graph.neighbors(2)) == {0, 1, 3}

    def test_neighbors_out_of_range(self, tiny_graph):
        with pytest.raises(GraphError):
            tiny_graph.neighbors(10)

    def test_has_edge(self, tiny_graph):
        assert tiny_graph.has_edge(0, 1)
        assert not tiny_graph.has_edge(0, 5)

    def test_edge_list_is_upper_triangular(self, tiny_graph):
        edges = tiny_graph.edge_list()
        assert edges.shape == (7, 2)
        assert (edges[:, 0] < edges[:, 1]).all()


class TestDerivedViews:
    def test_subgraph(self, tiny_graph):
        sub = tiny_graph.subgraph([0, 1, 2])
        assert sub.num_nodes == 3
        assert sub.num_edges == 3
        np.testing.assert_array_equal(sub.labels, [0, 0, 0])

    def test_with_features(self, tiny_graph):
        new_features = np.ones((6, 4))
        updated = tiny_graph.with_features(new_features)
        assert updated.num_features == 4
        assert tiny_graph.num_features == 2

    def test_with_labels(self, tiny_graph):
        updated = tiny_graph.with_labels(np.zeros(6, dtype=int))
        assert updated.num_classes == 1

    def test_copy_is_independent(self, tiny_graph):
        copy = tiny_graph.copy()
        copy.features[0, 0] = 99.0
        assert tiny_graph.features[0, 0] != 99.0
