"""Fault-injection and coalescing suite for the serving layer.

Proves the ``repro.serve`` degradation ladder by *injecting* rung
failures (the ``compute_exact``/``compute_degraded`` hooks raise or
stall on demand) and asserting both the serving path of every answer and
the per-path counters:

* exact rung healthy → ``exact`` answers, ``exact_served``/``batches``;
* exact rung raising + warm operator cache → ``cached`` answers at the
  stored entry's tighter ε′, ``exact_failures``/``cached_served``;
* exact rung raising + no cache → ``degraded`` answers at the loosened
  ε, ``degraded_served``;
* exact rung *slow* + a tiny time budget → the completed answer is
  discarded (``budget_overruns``) and the ladder falls through;
* every rung failing → :class:`repro.errors.ServeError` + ``failed``.

Plus the coalescing guarantee: concurrent clients batched through the
:class:`repro.serve.batching.QueryBatcher` receive answers bit-identical
to the same queries served alone.
"""

import json
import threading
import time
import urllib.error
import urllib.request

import pytest

from _simrank_fixtures import erdos_renyi as _erdos_renyi
from repro.api import topk as api_topk
from repro.config import ServeConfig, SimRankConfig
from repro.errors import ServeError, SimRankError
from repro.serve import QueryBatcher, SimRankService, make_daemon
from repro.serve.daemon import ServeDaemon
from repro.serve.service import LATENCY_WINDOW, SERVE_PATHS, ServiceCounters
from repro.simrank.cache import get_operator_cache
from repro.simrank.topk import simrank_operator


@pytest.fixture()
def graph():
    return _erdos_renyi(60, 0.08, seed=0)


def _failing_compute(sources, top_k, epsilon):
    raise SimRankError("injected compute failure")


def _counters(service, **expected):
    """Assert the named counters and that every *unnamed* one is zero."""
    actual = service.counters.to_dict()
    for name, value in actual.items():
        assert value == expected.get(name, 0), (
            f"counter {name}: expected {expected.get(name, 0)}, got {value}")


class TestExactPath:
    def test_exact_answer_and_counters(self, graph):
        service = SimRankService(graph, simrank=SimRankConfig(epsilon=0.1))
        answer = service.topk(3, k=5)
        assert answer.path == "exact"
        assert answer.epsilon == 0.1
        assert answer.source == 3
        assert answer.k == 5
        scores = [value for _, value in answer.entries]
        assert scores == sorted(scores, reverse=True)
        _counters(service, queries=1, batches=1, exact_served=1)

    def test_service_matches_the_public_api(self, graph):
        """The exact rung serves exactly ``repro.api.topk``'s answer."""
        config = SimRankConfig(epsilon=0.1)
        service = SimRankService(graph, simrank=config)
        answer = service.topk(7, k=5)
        assert answer.entries == api_topk(graph, 7, 5, config)  # bitwise

    def test_batch_shares_one_round_and_coalesces(self, graph):
        service = SimRankService(graph, simrank=SimRankConfig(epsilon=0.1))
        answers = service.topk_batch([2, 9, 2], k=4)
        assert [answer.source for answer in answers] == [2, 9, 2]
        assert answers[0].entries == answers[2].entries  # duplicates share
        assert all(answer.batch_size == 3 for answer in answers)
        _counters(service, queries=3, batches=1, exact_served=2, coalesced=3)

    def test_score_uses_the_full_row(self, graph):
        service = SimRankService(graph, simrank=SimRankConfig(epsilon=0.1))
        answer = service.score(3, 17)
        assert answer.path == "exact"
        full = dict(api_topk(graph, 3, graph.num_nodes,
                             SimRankConfig(epsilon=0.1)))
        assert answer.value == full.get(17, 0.0)


class TestDegradationLadder:
    def test_exact_failure_falls_to_degraded(self, graph):
        service = SimRankService(
            graph, simrank=SimRankConfig(epsilon=0.1),
            serve=ServeConfig(degraded_epsilon_factor=5.0),
            compute_exact=_failing_compute)
        answer = service.topk(3, k=5)
        assert answer.path == "degraded"
        assert answer.epsilon == pytest.approx(0.5)
        _counters(service, queries=1, exact_failures=1, degraded_served=1)

    def test_exact_failure_with_warm_cache_serves_cached(self, graph,
                                                         tmp_path):
        # Warm the operator cache with a *tighter* all-pairs entry …
        cache_dir = str(tmp_path / "operators")
        simrank_operator(graph, SimRankConfig(
            method="localpush", epsilon=0.05, top_k=None,
            cache_dir=cache_dir))
        cache = get_operator_cache(cache_dir)
        # … then fail the exact rung: the entry dominates ε=0.1 requests.
        service = SimRankService(
            graph, simrank=SimRankConfig(epsilon=0.1, cache_dir=cache_dir),
            compute_exact=_failing_compute)
        answer = service.topk(3, k=5)
        assert answer.path == "cached"
        assert answer.epsilon == 0.05  # the bound the row actually satisfies
        _counters(service, queries=1, exact_failures=1, cached_served=1)
        assert cache.row_hits == 1

    def test_admission_cap_trips_the_exact_rung(self, graph):
        # ε=0.01 needs ~8k pushes on this graph, the degraded ε=0.1 ~550:
        # a cap of 2000 admits only the degraded recompute.
        service = SimRankService(
            graph, simrank=SimRankConfig(epsilon=0.01),
            serve=ServeConfig(max_pushes_per_query=2000))
        answer = service.topk(3, k=5)
        assert answer.path == "degraded"
        _counters(service, queries=1, exact_failures=1, degraded_served=1)

    def test_slow_exact_is_discarded_as_over_budget(self, graph):
        inner = {}

        def slow_exact(sources, top_k, epsilon):
            rows = inner["service"]._engine_rows(sources, top_k, epsilon)
            time.sleep(0.05)
            return rows

        service = SimRankService(
            graph, simrank=SimRankConfig(epsilon=0.1),
            serve=ServeConfig(time_budget_seconds=0.001),
            compute_exact=slow_exact)
        inner["service"] = service
        answer = service.topk(3, k=5)
        assert answer.path == "degraded"  # completed, but too late
        _counters(service, queries=1, budget_overruns=1, degraded_served=1)

    def test_exact_disabled_skips_straight_past_the_rung(self, graph):
        service = SimRankService(
            graph, simrank=SimRankConfig(epsilon=0.1),
            serve=ServeConfig(exact_enabled=False))
        answer = service.topk(3, k=5)
        assert answer.path == "degraded"
        _counters(service, queries=1, degraded_served=1)  # no exact_failures

    def test_every_rung_failing_raises_serve_error(self, graph):
        service = SimRankService(
            graph, simrank=SimRankConfig(epsilon=0.1),
            compute_exact=_failing_compute,
            compute_degraded=_failing_compute)
        with pytest.raises(ServeError):
            service.topk(3, k=5)
        counters = service.counters.to_dict()
        assert counters["failed"] == 1
        assert counters["exact_failures"] == 1
        # Served-path partition: only *answered* queries count.
        assert counters["queries"] == (counters["exact_served"]
                                       + counters["cached_served"]
                                       + counters["degraded_served"]) == 0

    def test_degraded_answer_equals_the_loosened_contract(self, graph):
        """The degraded rung is the real engine at the loosened ε."""
        service = SimRankService(
            graph, simrank=SimRankConfig(epsilon=0.02),
            serve=ServeConfig(degraded_epsilon_factor=5.0),
            compute_exact=_failing_compute)
        answer = service.topk(3, k=5)
        reference = api_topk(graph, 3, 5, SimRankConfig(epsilon=0.1))
        assert answer.entries == reference  # 0.02 × 5 = 0.1, bitwise

    def test_invalid_source_rejected_before_the_ladder(self, graph):
        service = SimRankService(graph)
        with pytest.raises(SimRankError):
            service.topk(graph.num_nodes)
        with pytest.raises(SimRankError):
            service.topk_batch([])
        _counters(service)  # nothing counted


class TestQueryBatcher:
    def test_concurrent_clients_coalesce_and_match_solo(self, graph):
        sources = [1, 5, 9, 23]
        solo_service = SimRankService(graph,
                                      simrank=SimRankConfig(epsilon=0.1))
        solo = {source: solo_service.topk(source, k=5).entries
                for source in sources}

        service = SimRankService(graph, simrank=SimRankConfig(epsilon=0.1))
        batcher = QueryBatcher(service, window_seconds=0.25,
                               max_batch_size=len(sources))
        barrier = threading.Barrier(len(sources))
        answers = {}

        def client(source):
            barrier.wait()
            answers[source] = batcher.submit(source, 5)

        threads = [threading.Thread(target=client, args=(source,))
                   for source in sources]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()

        for source in sources:
            assert answers[source].entries == solo[source]  # bitwise
            assert answers[source].path == "exact"
        # All four shared one frontier round (max_batch_size cut the
        # window short once everyone had piled up).
        _counters(service, queries=4, batches=1, exact_served=4, coalesced=4)
        assert all(answers[source].batch_size == 4 for source in sources)

    def test_sequential_submits_are_plain_batches_of_one(self, graph):
        service = SimRankService(graph, simrank=SimRankConfig(epsilon=0.1))
        batcher = QueryBatcher(service, window_seconds=0.0)
        first = batcher.submit(3, 5)
        second = batcher.submit(3, 5)
        assert first.entries == second.entries
        assert first.batch_size == 1
        _counters(service, queries=2, batches=2, exact_served=2)

    def test_batch_errors_propagate_to_every_submitter(self, graph):
        service = SimRankService(graph, compute_exact=_failing_compute,
                                 compute_degraded=_failing_compute)
        batcher = QueryBatcher(service, window_seconds=0.0)
        with pytest.raises(ServeError):
            batcher.submit(3, 5)
        # The batcher is reusable after a failed batch.
        with pytest.raises(ServeError):
            batcher.submit(4, 5)


class TestDaemon:
    @pytest.fixture()
    def daemon(self, graph):
        daemon = make_daemon(graph, simrank=SimRankConfig(epsilon=0.1),
                             serve=ServeConfig(port=0,
                                               batch_window_seconds=0.0))
        thread = threading.Thread(target=daemon.serve_forever, daemon=True)
        thread.start()
        yield daemon
        daemon.shutdown()
        daemon.server_close()
        thread.join(timeout=5)

    @staticmethod
    def _get(daemon, path):
        host, port = daemon.server_address[0], daemon.server_address[1]
        try:
            with urllib.request.urlopen(
                    f"http://{host}:{port}{path}", timeout=10) as response:
                return response.status, json.load(response)
        except urllib.error.HTTPError as error:
            return error.code, json.load(error)

    def test_healthz(self, daemon, graph):
        status, payload = self._get(daemon, "/healthz")
        assert status == 200
        assert payload == {"status": "ok", "num_nodes": graph.num_nodes}

    def test_topk_roundtrip(self, daemon, graph):
        status, payload = self._get(daemon, "/topk?u=3&k=5")
        assert status == 200
        assert payload["source"] == 3 and payload["k"] == 5
        assert payload["path"] == "exact"
        assert payload["epsilon"] == 0.1
        expected = api_topk(graph, 3, 5, SimRankConfig(epsilon=0.1))
        assert [(node, value) for node, value in payload["entries"]] \
            == expected
        assert payload["counters"]["exact_served"] == 1

    def test_score_roundtrip(self, daemon, graph):
        status, payload = self._get(daemon, "/score?u=3&v=17")
        assert status == 200
        assert payload["u"] == 3 and payload["v"] == 17
        assert payload["path"] == "exact"
        full = dict(api_topk(graph, 3, graph.num_nodes,
                             SimRankConfig(epsilon=0.1)))
        assert payload["score"] == full.get(17, 0.0)

    def test_metrics_shape(self, daemon):
        self._get(daemon, "/topk?u=3")
        status, payload = self._get(daemon, "/metrics")
        assert status == 200
        assert set(payload) == {"counters", "latency", "cache", "graph",
                                "config"}
        assert payload["counters"]["queries"] == 1
        assert payload["graph"]["num_nodes"] == 60
        assert payload["config"]["epsilon"] == 0.1
        assert payload["config"]["kernel"] == "auto"
        assert payload["config"]["dtype"] == "float64"
        assert payload["cache"] is None  # no cache_dir configured
        latency = payload["latency"]
        assert set(latency) == {"paths", "qps", "window_size"}
        assert set(latency["paths"]) == set(SERVE_PATHS)
        exact = latency["paths"]["exact"]
        assert exact["count"] == 1
        assert 0.0 <= exact["p50_seconds"] <= exact["p95_seconds"] \
            <= exact["p99_seconds"]
        assert latency["paths"]["cached"] is None
        assert latency["paths"]["degraded"] is None

    def test_bad_requests_are_400(self, daemon, graph):
        assert self._get(daemon, f"/topk?u={graph.num_nodes}")[0] == 400
        assert self._get(daemon, "/topk")[0] == 400  # missing u
        assert self._get(daemon, "/topk?u=abc")[0] == 400
        assert self._get(daemon, "/score?u=1")[0] == 400  # missing v

    def test_unknown_path_is_404(self, daemon):
        assert self._get(daemon, "/nope")[0] == 404

    def test_prometheus_endpoint(self, daemon):
        self._get(daemon, "/topk?u=3")
        host, port = daemon.server_address[0], daemon.server_address[1]
        with urllib.request.urlopen(
                f"http://{host}:{port}/metrics/prometheus",
                timeout=10) as response:
            assert response.status == 200
            content_type = response.headers["Content-Type"]
            text = response.read().decode("utf-8")
        assert content_type.startswith("text/plain")
        assert "version=0.0.4" in content_type
        assert "# TYPE repro_serve_queries_total counter" in text
        assert "repro_serve_queries_total 1" in text
        assert 'repro_serve_latency_seconds{path="exact",quantile="p50"}' \
            in text
        assert "repro_serve_graph_nodes 60" in text

    def test_exhausted_ladder_is_503_and_the_daemon_survives(self, graph):
        service = SimRankService(graph, compute_exact=_failing_compute,
                                 compute_degraded=_failing_compute)
        daemon = ServeDaemon(("127.0.0.1", 0), service)
        thread = threading.Thread(target=daemon.serve_forever, daemon=True)
        thread.start()
        try:
            status, payload = self._get(daemon, "/topk?u=3")
            assert status == 503
            assert "every serving rung failed" in payload["error"]
            assert self._get(daemon, "/healthz")[0] == 200  # still alive
        finally:
            daemon.shutdown()
            daemon.server_close()
            thread.join(timeout=5)


class TestLatencyWindow:
    """Edge cases of the rolling per-path latency percentile window."""

    def test_no_queries_yet(self):
        counters = ServiceCounters()
        summary = counters.latency_summary()
        assert all(summary["paths"][path] is None for path in SERVE_PATHS)
        assert summary["qps"] is None
        assert summary["window_size"] == LATENCY_WINDOW

    def test_single_sample_collapses_the_percentiles(self):
        counters = ServiceCounters()
        counters.record_latency("exact", 0.125)
        exact = counters.latency_summary()["paths"]["exact"]
        assert exact["count"] == 1
        assert exact["p50_seconds"] == exact["p95_seconds"] \
            == exact["p99_seconds"] == 0.125
        # The other paths stay untouched.
        assert counters.latency_summary()["paths"]["cached"] is None

    def test_rollover_past_the_window(self):
        counters = ServiceCounters()
        # Fill past the window with a huge constant, then roll it out
        # with a full window of a small one: the percentiles must reflect
        # only the surviving window while the count stays cumulative.
        for _ in range(LATENCY_WINDOW):
            counters.record_latency("exact", 100.0)
        for _ in range(LATENCY_WINDOW):
            counters.record_latency("exact", 0.001)
        exact = counters.latency_summary()["paths"]["exact"]
        assert exact["count"] == 2 * LATENCY_WINDOW
        assert exact["p99_seconds"] == 0.001  # the 100s samples rolled out

    def test_qps_needs_two_distinct_instants(self):
        counters = ServiceCounters()
        counters.record_latency("exact", 0.1)
        # A single instant gives no span; qps stays None rather than inf.
        first = counters.latency_summary()["qps"]
        assert first is None or first > 0.0  # same-tick second sample races
        time.sleep(0.01)
        counters.record_latency("exact", 0.1)
        assert counters.latency_summary()["qps"] > 0.0


class TestCounterThreadSafety:
    """The satellite the registry re-base exists for: no lost updates."""

    def test_concurrent_increments_are_atomic(self):
        counters = ServiceCounters()
        increments, threads = 2000, 8

        def worker():
            for _ in range(increments):
                counters.inc("queries")
                counters.inc("repair_seconds", 0.5)

        pool = [threading.Thread(target=worker) for _ in range(threads)]
        for thread in pool:
            thread.start()
        for thread in pool:
            thread.join()
        totals = counters.to_dict()
        assert totals["queries"] == threads * increments
        assert totals["repair_seconds"] == pytest.approx(
            0.5 * threads * increments)

    def test_concurrent_latency_recording(self):
        counters = ServiceCounters()

        def worker(path):
            for _ in range(500):
                counters.record_latency(path, 0.01)

        pool = [threading.Thread(target=worker, args=(path,))
                for path in SERVE_PATHS for _ in range(2)]
        for thread in pool:
            thread.start()
        for thread in pool:
            thread.join()
        summary = counters.latency_summary()
        for path in SERVE_PATHS:
            assert summary["paths"][path]["count"] == 1000

    def test_counters_view_matches_the_registry(self, graph):
        service = SimRankService(graph, simrank=SimRankConfig(epsilon=0.1))
        service.topk(3, k=5)
        assert service.counters.value("queries") == 1.0
        registry_counter = service.counters.registry.counter(
            "repro_serve_queries_total")
        assert registry_counter.value() == 1.0
