"""Integration suite: the telemetry handle threaded through every layer.

Each instrumented layer is exercised with a live (enabled) handle and
its spans/counters asserted, *and* with the disabled default asserted
bit-identical to the enabled run — tracing is observability only, it
never changes an answer:

* **engine** — ``localpush_engine(profile=TracingPhaseProfile(...))``
  emits one ``localpush.<phase>`` span per measured phase interval,
  tagged with the phase and its round, and the span aggregates equal the
  accumulating profile exactly (same measured intervals);
* **serve** — the service's counters land in the handle's registry
  (``repro_serve_*``), every shared exact round is a
  ``serve.exact_batch`` span, and the cached rung mirrors operator-cache
  events onto ``repro_cache_events_total``;
* **dynamic** — each repair is a ``dynamic.repair`` span carrying the
  batch size and the repair's push/round/warm-start provenance;
* **experiments** — traced cells embed their versioned span tree in the
  run artefact (``trace`` key) and the store payload, stream to the
  handle's JSONL sink with run-unique span ids, and untraced payloads
  stay byte-identical to the pre-telemetry format;
* **bench** — ``profile_breakdown`` derives the (unchanged) per-phase
  schema from the engine's spans.
"""

import importlib.util
import json
from pathlib import Path

import numpy as np
import pytest

from _simrank_fixtures import erdos_renyi as _erdos_renyi
from repro.config import (ExperimentSpec, RunSpec, SimRankConfig,
                          TelemetryConfig)
from repro.dynamic.operator import DynamicOperator
from repro.experiments.engine import execute
from repro.experiments.registry import ExperimentDefinition
from repro.experiments.store import ArtifactStore
from repro.graphs.delta import GraphDelta
from repro.serve import SimRankService
from repro.simrank.cache import get_operator_cache
from repro.simrank.engine import localpush_engine
from repro.simrank.kernels import PHASES
from repro.simrank.topk import simrank_operator
from repro.telemetry import (SpanRecorder, Telemetry, Tracer,
                             TracingPhaseProfile, load_trace, phase_seconds,
                             telemetry_from_config)


@pytest.fixture()
def graph():
    return _erdos_renyi(50, 0.1, seed=3)


def _enabled(tmp_path, **overrides):
    config = TelemetryConfig(enabled=True, **overrides)
    return telemetry_from_config(config)


# --------------------------------------------------------------------- #
# Engine phase spans
# --------------------------------------------------------------------- #
class TestEnginePhaseSpans:
    def test_phase_spans_with_round_attributes(self, graph):
        recorder = SpanRecorder()
        profile = TracingPhaseProfile(Tracer([recorder]))
        localpush_engine(graph, epsilon=0.1, profile=profile)
        spans = recorder.spans()
        names = {span["name"] for span in spans}
        assert names == {f"localpush.{phase}" for phase in PHASES}
        for span in spans:
            attrs = span["attributes"]
            assert attrs["phase"] in PHASES
            assert isinstance(attrs["round"], int) and attrs["round"] >= 0
            assert span["duration"] >= 0.0

    def test_span_aggregates_equal_the_accumulating_profile(self, graph):
        recorder = SpanRecorder()
        profile = TracingPhaseProfile(Tracer([recorder]))
        localpush_engine(graph, epsilon=0.1, profile=profile)
        # Same measured intervals, two views: summing the spans recovers
        # the accumulated per-phase seconds exactly.
        totals = phase_seconds(recorder.spans())
        for phase, seconds in profile.as_dict().items():
            assert totals.get(phase, 0.0) == pytest.approx(seconds)

    def test_profiled_run_is_bit_identical_to_unprofiled(self, graph):
        plain = localpush_engine(graph, epsilon=0.1)
        profiled = localpush_engine(
            graph, epsilon=0.1,
            profile=TracingPhaseProfile(Tracer([SpanRecorder()])))
        assert (plain.matrix != profiled.matrix).nnz == 0
        assert plain.num_pushes == profiled.num_pushes

    def test_telemetry_handle_builds_the_profile(self, tmp_path):
        handle = _enabled(tmp_path)
        profile = handle.phase_profile()
        assert isinstance(profile, TracingPhaseProfile)
        # The disabled default yields None — the engine's "unmeasured".
        assert telemetry_from_config(None).phase_profile() is None


# --------------------------------------------------------------------- #
# Serving layer
# --------------------------------------------------------------------- #
class TestServeTelemetry:
    def test_counters_land_in_the_handle_registry(self, graph, tmp_path):
        handle = _enabled(tmp_path)
        service = SimRankService(graph, simrank=SimRankConfig(epsilon=0.1),
                                 telemetry=handle)
        service.topk(3, k=5)
        assert service.counters.registry is handle.registry
        queries = handle.registry.counter("repro_serve_queries_total")
        assert queries.value() == 1.0

    def test_exact_batch_span(self, graph, tmp_path):
        handle = _enabled(tmp_path)
        service = SimRankService(graph, simrank=SimRankConfig(epsilon=0.1),
                                 telemetry=handle)
        service.topk_batch([2, 9, 2], k=4)
        spans = [span for span in handle.recorder.spans()
                 if span["name"] == "serve.exact_batch"]
        assert len(spans) == 1
        assert spans[0]["attributes"] == {"batch_size": 2}  # deduplicated

    def test_enabled_answers_match_disabled(self, graph, tmp_path):
        plain = SimRankService(graph, simrank=SimRankConfig(epsilon=0.1))
        traced = SimRankService(graph, simrank=SimRankConfig(epsilon=0.1),
                                telemetry=_enabled(tmp_path))
        assert traced.topk(7, k=5).entries == plain.topk(7, k=5).entries

    def test_disabled_service_records_no_spans(self, graph):
        service = SimRankService(graph, simrank=SimRankConfig(epsilon=0.1))
        service.topk(3, k=5)
        assert service.telemetry.enabled is False
        assert service.telemetry.recorder is None
        # Counters still work (private registry), so /metrics/prometheus
        # is available without --telemetry.
        assert "repro_serve_queries_total 1" in service.prometheus_metrics()

    def test_cache_events_mirrored_onto_the_registry(self, graph, tmp_path):
        cache_dir = str(tmp_path / "operators")
        simrank_operator(graph, SimRankConfig(
            method="localpush", epsilon=0.05, top_k=None,
            cache_dir=cache_dir))
        cache = get_operator_cache(cache_dir)
        handle = _enabled(tmp_path)

        def failing(sources, top_k, epsilon):
            from repro.errors import SimRankError
            raise SimRankError("injected")

        service = SimRankService(
            graph, simrank=SimRankConfig(epsilon=0.1, cache_dir=cache_dir),
            compute_exact=failing, telemetry=handle)
        answer = service.topk(3, k=5)
        assert answer.path == "cached"
        events = handle.registry.counter("repro_cache_events_total")
        assert events.value(event="row_hit") == cache.row_hits == 1

    def test_prometheus_scrape_includes_gauges(self, graph, tmp_path):
        handle = _enabled(tmp_path)
        service = SimRankService(graph, simrank=SimRankConfig(epsilon=0.1),
                                 telemetry=handle)
        service.topk(3, k=5)
        text = service.prometheus_metrics()
        assert "# TYPE repro_serve_queries_total counter" in text
        assert "repro_serve_queries_total 1" in text
        assert 'repro_serve_latency_seconds{path="exact",quantile="p50"}' \
            in text
        assert f"repro_serve_graph_nodes {graph.num_nodes}" in text


# --------------------------------------------------------------------- #
# Dynamic repair spans
# --------------------------------------------------------------------- #
class TestDynamicTelemetry:
    def _non_edge(self, graph):
        for v in range(1, graph.num_nodes):
            if graph.adjacency[0, v] == 0.0:
                return 0, v
        raise AssertionError("graph is complete")  # pragma: no cover

    def test_repair_span_carries_provenance(self, graph, tmp_path):
        handle = _enabled(tmp_path)
        operator = DynamicOperator(graph, simrank=SimRankConfig(epsilon=0.1),
                                   telemetry=handle)
        u, v = self._non_edge(graph)
        result = operator.apply([GraphDelta("insert", u, v)])
        spans = [span for span in handle.recorder.spans()
                 if span["name"] == "dynamic.repair"]
        assert len(spans) == 1
        attrs = spans[0]["attributes"]
        assert attrs["batch_size"] == 1
        assert attrs["num_pushes"] == result.num_pushes
        assert attrs["num_rounds"] == result.num_rounds
        assert attrs["warm_start"] == result.warm_start

    def test_traced_repair_is_bit_identical(self, graph):
        u, v = self._non_edge(graph)
        batch = [GraphDelta("insert", u, v)]
        plain = DynamicOperator(graph, simrank=SimRankConfig(epsilon=0.1))
        plain.apply(batch)
        handle = Telemetry(recorder=SpanRecorder())
        traced = DynamicOperator(graph, simrank=SimRankConfig(epsilon=0.1),
                                 telemetry=handle)
        traced.apply(batch)
        assert (plain.operator().matrix != traced.operator().matrix).nnz == 0


# --------------------------------------------------------------------- #
# Experiment engine traces
# --------------------------------------------------------------------- #
def _toy_cell(cell):
    return {"index": cell.index, "dataset": cell.spec.dataset}


def _toy_reduce(spec, outcomes):
    return [outcome.record for outcome in outcomes]


def _toy_spec():
    return ExperimentSpec(
        name="demo", base=RunSpec(model="sigma", dataset="texas", repeats=1),
        grid=({"dataset": "texas"}, {"dataset": "cora"}))


_TOY = ExperimentDefinition(name="demo", title="Demo", builder=_toy_spec,
                            reduce=_toy_reduce, cell=_toy_cell)


class TestExperimentTraces:
    def test_traced_cells_embed_span_trees(self, tmp_path):
        trace_path = tmp_path / "run-trace.jsonl"
        handle = telemetry_from_config(TelemetryConfig(
            enabled=True, trace_path=str(trace_path)))
        run = execute(_toy_spec(), definition=_TOY, telemetry=handle)
        handle.close()
        assert all(outcome.trace is not None for outcome in run.outcomes)
        for outcome in run.outcomes:
            names = [span["name"] for span in outcome.trace["spans"]]
            assert "experiment.cell" in names
            assert "experiment.cell.run" in names
            roots = [span for span in outcome.trace["spans"]
                     if span["parent_id"] is None]
            assert [span["name"] for span in roots] == ["experiment.cell"]
            assert roots[0]["attributes"]["experiment"] == "demo"
        # The run record carries the trees under the cells' "trace" key.
        record = run.to_record()
        assert all(cell["trace"] is not None for cell in record["cells"])
        # The run-level JSONL has run-unique ids with resolvable parents.
        spans = load_trace(trace_path)
        ids = [span["span_id"] for span in spans]
        assert len(set(ids)) == len(ids) == 4  # 2 cells × 2 spans
        known = set(ids)
        assert all(span["parent_id"] in known for span in spans
                   if span["parent_id"] is not None)

    def test_untraced_run_has_no_trace_anywhere(self, tmp_path):
        store = ArtifactStore(tmp_path / "store")
        run = execute(_toy_spec(), definition=_TOY, store=store)
        assert all(outcome.trace is None for outcome in run.outcomes)
        for outcome in run.outcomes:
            payload = json.loads(store.cell_path(outcome.key).read_text())
            assert "trace" not in payload  # byte-identical legacy payload

    def test_traced_store_payload_carries_the_tree(self, tmp_path):
        store = ArtifactStore(tmp_path / "store")
        handle = telemetry_from_config(TelemetryConfig(enabled=True))
        run = execute(_toy_spec(), definition=_TOY, store=store,
                      telemetry=handle)
        outcome = run.outcomes[0]
        payload = json.loads(store.cell_path(outcome.key).read_text())
        assert payload["trace"]["spans"]
        assert payload["record"] == outcome.record

    def test_tracing_never_invalidates_stored_cells(self, tmp_path):
        store = ArtifactStore(tmp_path / "store")
        execute(_toy_spec(), definition=_TOY, store=store)
        handle = telemetry_from_config(TelemetryConfig(enabled=True))
        rerun = execute(_toy_spec(), definition=_TOY, store=store,
                        telemetry=handle)
        # Same keys: every cell resumes from the untraced run.
        assert rerun.cells_resumed == 2 and rerun.cells_executed == 0

    def test_thread_executor_traces_every_cell(self, tmp_path):
        handle = telemetry_from_config(TelemetryConfig(enabled=True))
        run = execute(_toy_spec(), definition=_TOY, executor="thread",
                      workers=2, telemetry=handle)
        assert all(outcome.trace is not None for outcome in run.outcomes)


# --------------------------------------------------------------------- #
# Benchmark profile on spans
# --------------------------------------------------------------------- #
class TestBenchProfile:
    def test_profile_breakdown_schema_unchanged(self):
        bench_path = (Path(__file__).resolve().parent.parent / "benchmarks"
                      / "bench_localpush.py")
        spec = importlib.util.spec_from_file_location("bench_lp_telemetry",
                                                      bench_path)
        bench = importlib.util.module_from_spec(spec)
        spec.loader.exec_module(bench)
        graph = _erdos_renyi(40, 0.1, seed=1)
        section = bench.profile_breakdown(graph, epsilon=0.1, decay=0.6,
                                          num_workers=1, show=False)
        assert set(section["phase_seconds"]) == set(PHASES)
        assert all(isinstance(value, float) and value >= 0.0
                   for value in section["phase_seconds"].values())
