"""Suite for the config layer (`repro.config`).

Covers the acceptance criteria of the config-object API redesign:

* ``SimRankConfig`` / ``RunSpec`` round-trip through ``to_dict`` /
  ``from_dict`` and reject unknown fields and invalid values.
* ``SimRankConfig.from_cli_args`` is in parity with the CLI flags: every
  mapped flag exists on the parser and lands in the right field.
* **Old-kwargs ↔ config equivalence**: the deprecated keyword paths on
  ``simrank_operator`` and the SIGMA models build identical operators
  *and identical on-disk cache keys* (warm caches from the pre-config
  era keep hitting), with a ``DeprecationWarning`` raised exactly once
  per deprecated keyword.
"""

import warnings

import numpy as np
import pytest

from repro.config import (
    CACHE_KEY_FIELDS,
    SIGMA_DEFAULT_SIMRANK,
    RunSpec,
    SimRankConfig,
)
from repro.errors import ConfigError, TrainingError
from repro.simrank.cache import get_operator_cache
from repro.simrank.topk import simrank_operator
from repro.training.config import TrainConfig


def _deprecation_messages(records):
    return [str(record.message) for record in records
            if issubclass(record.category, DeprecationWarning)]


class TestSimRankConfigValidation:
    def test_defaults_are_valid(self):
        config = SimRankConfig()
        assert config.method == "auto"
        assert config.epsilon == 0.1
        assert config.top_k is None

    @pytest.mark.parametrize("bad", [
        {"method": "magic"},
        {"decay": 0.0},
        {"decay": 1.0},
        {"epsilon": 0.0},
        {"epsilon": -0.1},
        {"top_k": 0},
        {"top_k": -4},
        {"top_k": True},
        {"exact_size_limit": -1},
        {"backend": "gpu"},
        {"executor": "fiber"},
        {"workers": 0},
        {"cache_max_bytes": 0},
        {"cache_max_bytes": -5},
        {"epsilon": "abc"},
        {"decay": None},
        {"top_k": "many"},
        {"cache_dir": 42},
    ])
    def test_invalid_fields_raise(self, bad):
        with pytest.raises(ConfigError):
            SimRankConfig(**bad)

    def test_config_error_is_a_value_error(self):
        with pytest.raises(ValueError):
            SimRankConfig(cache_max_bytes=-1)

    def test_coercion(self, tmp_path):
        config = SimRankConfig(decay="0.5", epsilon="0.2", top_k=8.0,
                               workers=2.0, cache_dir=tmp_path)
        assert config.decay == 0.5 and isinstance(config.decay, float)
        assert config.top_k == 8 and isinstance(config.top_k, int)
        assert config.workers == 2 and isinstance(config.workers, int)
        assert config.cache_dir == str(tmp_path)

    def test_frozen(self):
        with pytest.raises(AttributeError):
            SimRankConfig().epsilon = 0.5


class TestSimRankConfigCopies:
    def test_with_overrides_returns_validated_copy(self):
        base = SimRankConfig()
        tight = base.with_overrides(epsilon=0.01, top_k=16)
        assert tight.epsilon == 0.01 and tight.top_k == 16
        assert base.epsilon == 0.1 and base.top_k is None

    def test_with_overrides_rejects_unknown_fields(self):
        with pytest.raises(ConfigError, match="num_workers"):
            SimRankConfig().with_overrides(num_workers=4)

    def test_with_overrides_revalidates(self):
        with pytest.raises(ConfigError):
            SimRankConfig().with_overrides(epsilon=-1.0)


class TestSimRankConfigSerialisation:
    def test_round_trip(self, tmp_path):
        config = SimRankConfig(method="localpush", decay=0.7, epsilon=0.05,
                               top_k=16, row_normalize=True, backend="sharded",
                               executor="process", workers=3,
                               cache_dir=str(tmp_path), cache_max_bytes=1 << 20)
        assert SimRankConfig.from_dict(config.to_dict()) == config

    def test_to_dict_is_json_serialisable(self):
        import json

        json.dumps(SimRankConfig().to_dict())

    def test_from_dict_rejects_unknown_fields(self):
        with pytest.raises(ConfigError, match="num_workers"):
            SimRankConfig.from_dict({"num_workers": 4})

    def test_from_dict_validates(self):
        with pytest.raises(ConfigError):
            SimRankConfig.from_dict({"epsilon": -1.0})


class TestCacheKeyFields:
    def test_field_set_is_canonical(self):
        fields = SimRankConfig().cache_key_fields(num_nodes=500)
        assert tuple(fields) == CACHE_KEY_FIELDS

    def test_auto_resolves_by_size(self):
        config = SimRankConfig(exact_size_limit=100)
        assert config.cache_key_fields(50)["method"] == "series"
        assert config.cache_key_fields(101)["method"] == "localpush"

    def test_exact_method_drops_epsilon(self):
        fields = SimRankConfig(method="exact").cache_key_fields(50)
        assert fields["epsilon"] is None
        assert fields["backend"] is None

    def test_backend_label_resolved_for_localpush(self):
        config = SimRankConfig(method="localpush", backend="auto")
        assert config.cache_key_fields(100)["backend"] == "dict"
        assert config.cache_key_fields(1000)["backend"] == "vectorized"
        assert config.cache_key_fields(5000)["backend"] == "sharded"

    def test_executor_and_workers_never_enter_the_key(self):
        plain = SimRankConfig(method="localpush", backend="vectorized")
        pooled = plain.with_overrides(executor="process", workers=8)
        assert plain.cache_key_fields(1000) == pooled.cache_key_fields(1000)


class TestFromCliArgs:
    def test_every_mapped_flag_exists_on_the_parser(self):
        from repro.cli import build_parser

        args = build_parser().parse_args([])
        for attr in SimRankConfig.CLI_FLAG_FIELDS:
            assert hasattr(args, attr), f"parser is missing --{attr}"

    def test_flag_parity(self, tmp_path):
        from repro.cli import build_parser

        args = build_parser().parse_args([
            "--simrank-method", "localpush", "--decay", "0.7",
            "--epsilon", "0.05", "--top-k", "16",
            "--simrank-backend", "sharded", "--simrank-executor", "thread",
            "--simrank-workers", "3", "--simrank-cache-dir", str(tmp_path),
            "--simrank-cache-max-bytes", "4096",
        ])
        config = SimRankConfig.from_cli_args(args)
        assert config == SimRankConfig(
            method="localpush", decay=0.7, epsilon=0.05, top_k=16,
            backend="sharded", executor="thread", workers=3,
            cache_dir=str(tmp_path), cache_max_bytes=4096)

    def test_unset_flags_inherit_from_base(self):
        from repro.cli import build_parser

        args = build_parser().parse_args(["--epsilon", "0.05"])
        config = SimRankConfig.from_cli_args(args, base=SIGMA_DEFAULT_SIMRANK)
        assert config.epsilon == 0.05
        assert config.top_k == SIGMA_DEFAULT_SIMRANK.top_k == 32


class TestTrainConfigSerialisation:
    def test_round_trip(self):
        config = TrainConfig(learning_rate=0.02, weight_decay=1e-3,
                             patience=7, max_epochs=50)
        assert TrainConfig.from_dict(config.to_dict()) == config

    def test_unknown_field_rejected(self):
        with pytest.raises(TrainingError, match="momentum_decay"):
            TrainConfig.from_dict({"momentum_decay": 0.9})


class TestRunSpec:
    def test_defaults(self):
        spec = RunSpec()
        assert spec.model == "sigma" and spec.dataset == "texas"
        assert spec.train == TrainConfig()

    def test_unknown_model_rejected(self):
        with pytest.raises(ConfigError, match="transformer"):
            RunSpec(model="transformer")

    def test_model_name_normalised(self):
        assert RunSpec(model="SIGMA").model == "sigma"

    def test_simrank_only_for_sigma_models(self):
        with pytest.raises(ConfigError, match="glognn"):
            RunSpec(model="glognn", simrank=SimRankConfig())
        RunSpec(model="sigma_iterative", simrank=SimRankConfig())  # fine

    @pytest.mark.parametrize("bad", [
        {"repeats": 0},
        {"scale_factor": 0.0},
        {"overrides": "hidden=16"},
        {"simrank": "localpush"},
    ])
    def test_invalid_fields_raise(self, bad):
        with pytest.raises(ConfigError):
            RunSpec(**bad)

    def test_round_trip_with_nested_configs(self):
        spec = RunSpec(model="sigma", dataset="chameleon",
                       overrides={"hidden": 16},
                       train=TrainConfig(max_epochs=20, patience=5),
                       simrank=SimRankConfig(epsilon=0.05, top_k=8),
                       seed=7, repeats=2, scale_factor=0.5)
        assert RunSpec.from_dict(spec.to_dict()) == spec

    def test_to_dict_is_json_serialisable(self):
        import json

        json.dumps(RunSpec(simrank=SimRankConfig(top_k=8)).to_dict())

    def test_simrank_inside_overrides_round_trips(self):
        """__post_init__ permits the config inside overrides; that shape
        must serialise and reconstruct too."""
        import json

        spec = RunSpec(model="sigma",
                       overrides={"hidden": 16,
                                  "simrank": SimRankConfig(top_k=8)})
        payload = spec.to_dict()
        json.dumps(payload)
        rebuilt = RunSpec.from_dict(payload)
        assert rebuilt.overrides["simrank"] == SimRankConfig(top_k=8)
        assert rebuilt == spec

    def test_with_overrides(self):
        spec = RunSpec().with_overrides(dataset="cornell", repeats=3)
        assert spec.dataset == "cornell" and spec.repeats == 3
        with pytest.raises(ConfigError):
            RunSpec().with_overrides(epochs=10)


# ---------------------------------------------------------------------- #
# Old-kwargs ↔ config equivalence (the redesign's acceptance criterion)
# ---------------------------------------------------------------------- #
class TestOperatorKwargEquivalence:
    CONFIG = SimRankConfig(method="localpush", epsilon=0.1, top_k=8,
                           backend="vectorized")
    LEGACY = dict(method="localpush", epsilon=0.1, top_k=8,
                  backend="vectorized")

    def test_identical_operator(self, small_heterophilous_graph):
        via_config = simrank_operator(small_heterophilous_graph, self.CONFIG)
        with pytest.warns(DeprecationWarning):
            via_kwargs = simrank_operator(small_heterophilous_graph,
                                          **self.LEGACY)
        assert via_config.method == via_kwargs.method
        assert via_config.backend == via_kwargs.backend
        assert np.array_equal(via_config.matrix.indptr, via_kwargs.matrix.indptr)
        assert np.array_equal(via_config.matrix.indices, via_kwargs.matrix.indices)
        assert np.array_equal(via_config.matrix.data, via_kwargs.matrix.data)

    def test_warning_raised_exactly_once_per_kwarg(self, small_heterophilous_graph):
        with warnings.catch_warnings(record=True) as records:
            warnings.simplefilter("always")
            simrank_operator(small_heterophilous_graph, **self.LEGACY)
        messages = _deprecation_messages(records)
        assert len(messages) == len(self.LEGACY)
        for name in self.LEGACY:
            matching = [m for m in messages if f"'{name}='" in m]
            assert len(matching) == 1, f"expected one warning for {name}"

    def test_identical_cache_key_warm_hit(self, small_heterophilous_graph,
                                          tmp_path):
        """A cache written by the deprecated path is served to the config
        path as an *exact* hit (same key on disk), and vice versa."""
        cache = get_operator_cache(tmp_path / "operators")
        with pytest.warns(DeprecationWarning):
            cold = simrank_operator(small_heterophilous_graph,
                                    cache=str(cache.directory), **self.LEGACY)
        assert not cold.cache_hit and cache.stores == 1

        warm = simrank_operator(
            small_heterophilous_graph,
            self.CONFIG.with_overrides(cache_dir=str(cache.directory)))
        assert warm.cache_hit
        assert cache.exact_hits == 1 and cache.reuse_hits == 0

    def test_key_for_matches_cache_key_fields(self, small_heterophilous_graph,
                                              tmp_path):
        """The legacy keyword key derivation and the config derivation
        hash to the same on-disk key."""
        cache = get_operator_cache(tmp_path / "keys")
        n = small_heterophilous_graph.num_nodes
        legacy_key = cache.key_for(
            small_heterophilous_graph, method="localpush", decay=0.6,
            epsilon=0.1, top_k=8, row_normalize=False, backend="vectorized")
        config_key = cache.key_for_fields(
            small_heterophilous_graph, self.CONFIG.cache_key_fields(n))
        assert legacy_key == config_key

    def test_mixing_config_and_kwargs_is_an_error(self, small_heterophilous_graph):
        """The mixing rejection surfaces as ConfigError — and *before* any
        deprecation warning, so a warnings-as-errors filter cannot mask it."""
        with warnings.catch_warnings(record=True) as records:
            warnings.simplefilter("always")
            with pytest.raises(ConfigError, match="deprecated"):
                simrank_operator(small_heterophilous_graph, self.CONFIG,
                                 epsilon=0.2)
        assert not _deprecation_messages(records)


class TestModelKwargEquivalence:
    def test_sigma_identical_operator_and_warning_counts(
            self, small_heterophilous_graph):
        from repro.models.sigma import SIGMA

        config = SimRankConfig(method="localpush", epsilon=0.1, top_k=8)
        via_config = SIGMA(small_heterophilous_graph, hidden=8,
                           simrank=config, rng=0)
        with warnings.catch_warnings(record=True) as records:
            warnings.simplefilter("always")
            via_kwargs = SIGMA(small_heterophilous_graph, hidden=8,
                               simrank_method="localpush", epsilon=0.1,
                               top_k=8, rng=0)
        messages = _deprecation_messages(records)
        assert len(messages) == 3  # one per deprecated keyword
        assert via_config.simrank_config == via_kwargs.simrank_config
        assert np.array_equal(via_config.simrank.matrix.toarray(),
                              via_kwargs.simrank.matrix.toarray())

    def test_sigma_iterative_shim(self, small_heterophilous_graph):
        from repro.models.sigma_iterative import SIGMAIterative

        config = SimRankConfig(method="localpush", epsilon=0.1, top_k=8)
        via_config = SIGMAIterative(small_heterophilous_graph, hidden=8,
                                    num_layers=1, simrank=config, rng=0)
        with pytest.warns(DeprecationWarning):
            via_kwargs = SIGMAIterative(small_heterophilous_graph, hidden=8,
                                        num_layers=1,
                                        simrank_method="localpush",
                                        epsilon=0.1, top_k=8, rng=0)
        assert via_config.simrank_config == via_kwargs.simrank_config
        assert np.array_equal(via_config.simrank.matrix.toarray(),
                              via_kwargs.simrank.matrix.toarray())

    def test_sigma_mixing_config_and_kwargs_is_an_error(
            self, small_heterophilous_graph):
        from repro.models.sigma import SIGMA

        with pytest.raises(ConfigError, match="deprecated"):
            with warnings.catch_warnings():
                warnings.simplefilter("ignore")
                SIGMA(small_heterophilous_graph, hidden=8,
                      simrank=SimRankConfig(top_k=8), top_k=16, rng=0)

    def test_sigma_default_config_matches_paper_settings(
            self, small_heterophilous_graph):
        from repro.models.sigma import SIGMA

        model = SIGMA(small_heterophilous_graph, hidden=8, rng=0)
        assert model.simrank_config == SIGMA_DEFAULT_SIMRANK
        assert model.simrank_config.top_k == 32
        assert model.simrank_config.epsilon == 0.1

    def test_explicit_top_k_none_still_means_no_pruning(
            self, small_heterophilous_graph):
        """Legacy ``SIGMA(top_k=None)`` disabled pruning (default was 32);
        the shim must preserve that, not swallow the None."""
        from repro.models.sigma import SIGMA

        with pytest.warns(DeprecationWarning):
            model = SIGMA(small_heterophilous_graph, hidden=8, top_k=None,
                          rng=0)
        assert model.simrank_config.top_k is None
        assert model.simrank.top_k is None

    def test_explicit_none_pool_knobs_do_not_warn(
            self, small_heterophilous_graph):
        """The pool/cache knobs had None for their legacy default, so an
        explicit None is 'default', not a deprecated override."""
        from repro.models.sigma import SIGMA

        with warnings.catch_warnings(record=True) as records:
            warnings.simplefilter("always")
            model = SIGMA(small_heterophilous_graph, hidden=8,
                          simrank_executor=None, simrank_workers=None,
                          simrank_cache_dir=None, rng=0)
        assert not _deprecation_messages(records)
        assert model.simrank_config == SIGMA_DEFAULT_SIMRANK


class TestErrorCompatibility:
    def test_config_error_is_a_simrank_error(self, tiny_graph):
        """Pre-config callers wrapped simrank_operator in
        ``except SimRankError``; config validation must stay catchable."""
        from repro.errors import SimRankError

        with pytest.raises(SimRankError):
            with warnings.catch_warnings():
                warnings.simplefilter("ignore")
                simrank_operator(tiny_graph, method="magic")
        with pytest.raises(SimRankError):
            with warnings.catch_warnings():
                warnings.simplefilter("ignore")
                simrank_operator(tiny_graph, top_k=0)
