"""Mutation tests for the CI perf regression gate.

``benchmarks/check_perf_gate.py`` judges the freshest
``BENCH_localpush.json`` record against the last comparable one (same
``cpu_count``/``num_nodes``/ε/decay/mode) and must fail — exit 1 — on a
>30 % core-kernel slowdown.  These tests mutate crafted histories to
prove the gate actually trips, and pin the pass-throughs: no comparable
baseline, sub-noise-floor deltas, malformed history.  The gate script is
not a package, so it is loaded by file path.
"""

import importlib.util
import json
from pathlib import Path

import pytest

_GATE_PATH = (Path(__file__).resolve().parent.parent / "benchmarks"
              / "check_perf_gate.py")
_spec = importlib.util.spec_from_file_location("check_perf_gate", _GATE_PATH)
gate = importlib.util.module_from_spec(_spec)
_spec.loader.exec_module(gate)


def _record(core_seconds: float, **overrides) -> dict:
    shape = {"cpu_count": 4, "num_nodes": 600, "epsilon": 0.1,
             "decay": 0.6, "mode": "smoke"}
    shape.update(overrides)
    shape["backends"] = {"core": {"seconds": core_seconds}}
    return shape


class TestCheck:
    def test_regression_fails_the_gate(self):
        code, message = gate.check([_record(1.0), _record(1.5)],
                                   threshold=0.30, min_delta_seconds=0.05)
        assert code == 1
        assert "FAILED" in message

    def test_small_slowdown_passes(self):
        code, message = gate.check([_record(1.0), _record(1.1)],
                                   threshold=0.30, min_delta_seconds=0.05)
        assert code == 0
        assert "passed" in message

    def test_threshold_is_strict(self):
        # Exactly 30% slower is the boundary: the gate fails only past it.
        code, _ = gate.check([_record(1.0), _record(1.3)],
                             threshold=0.30, min_delta_seconds=0.05)
        assert code == 0

    def test_speedup_passes(self):
        code, _ = gate.check([_record(1.0), _record(0.5)],
                             threshold=0.30, min_delta_seconds=0.05)
        assert code == 0

    def test_noise_floor_shields_millisecond_records(self):
        # 100% slower but only 10ms in absolute terms: timer noise, not a
        # regression — the smoke records measure milliseconds.
        code, _ = gate.check([_record(0.01), _record(0.02)],
                             threshold=0.30, min_delta_seconds=0.05)
        assert code == 0

    @pytest.mark.parametrize("key,value", [
        ("cpu_count", 2), ("num_nodes", 5000), ("epsilon", 0.01),
        ("decay", 0.8), ("mode", "full")])
    def test_different_shape_is_not_a_baseline(self, key, value):
        history = [_record(1.0, **{key: value}), _record(10.0)]
        code, message = gate.check(history, threshold=0.30,
                                   min_delta_seconds=0.05)
        assert code == 0
        assert "no comparable baseline" in message

    def test_baseline_is_the_most_recent_comparable(self):
        # The slow middle record — not the fast first — is the baseline.
        history = [_record(0.5), _record(2.0), _record(2.2)]
        code, _ = gate.check(history, threshold=0.30, min_delta_seconds=0.05)
        assert code == 0

    def test_mixed_history_skips_foreign_shapes(self):
        history = [_record(1.0), _record(1.0, cpu_count=16), _record(1.5)]
        code, _ = gate.check(history, threshold=0.30, min_delta_seconds=0.05)
        assert code == 1

    def test_empty_history_is_unusable(self):
        code, _ = gate.check([], threshold=0.30, min_delta_seconds=0.05)
        assert code == 2

    def test_malformed_fresh_record_is_unusable(self):
        code, message = gate.check([{"backends": {}}], threshold=0.30,
                                   min_delta_seconds=0.05)
        assert code == 2
        assert "malformed" in message

    def test_bool_seconds_are_rejected(self):
        bad = _record(1.0)
        bad["backends"]["core"]["seconds"] = True
        code, _ = gate.check([bad], threshold=0.30, min_delta_seconds=0.05)
        assert code == 2


class TestMain:
    def _write(self, tmp_path, history) -> Path:
        path = tmp_path / "history.json"
        path.write_text(json.dumps(history))
        return path

    def test_end_to_end_regression(self, tmp_path):
        path = self._write(tmp_path, [_record(1.0), _record(2.0)])
        assert gate.main(["--history", str(path)]) == 1

    def test_end_to_end_pass(self, tmp_path):
        path = self._write(tmp_path, [_record(1.0), _record(1.0)])
        assert gate.main(["--history", str(path)]) == 0

    def test_missing_history_file(self, tmp_path):
        assert gate.main(["--history", str(tmp_path / "nope.json")]) == 2

    def test_invalid_json(self, tmp_path):
        path = tmp_path / "broken.json"
        path.write_text("{not json")
        assert gate.main(["--history", str(path)]) == 2

    def test_single_record_file_is_wrapped(self, tmp_path):
        path = self._write(tmp_path, _record(1.0))
        assert gate.main(["--history", str(path)]) == 0

    def test_threshold_flag(self, tmp_path):
        path = self._write(tmp_path, [_record(1.0), _record(1.5)])
        assert gate.main(["--history", str(path)]) == 1
        assert gate.main(["--history", str(path), "--threshold", "0.6"]) == 0

    def test_real_repo_history_passes(self):
        # The tracked history must never leave the gate failing: CI runs
        # the gate after appending a comparable record.
        assert gate.main([]) == 0
