"""Kernel-equivalence and float32 suites for the push-round kernel layer.

The contract under test (``repro/simrank/kernels.py``): for a fixed
dtype, every kernel × executor × worker count returns *bit-identical*
matrices — the same guarantee the executor axis carries, and the reason
``kernel`` stays out of the operator-cache key while ``dtype`` is keyed.
Plus the float32 mode's adjusted error bound
(:func:`repro.simrank.kernels.float32_error_bound`), checked against the
dense ``linearized_simrank`` oracle under hypothesis-driven graphs.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from _simrank_fixtures import disconnected, erdos_renyi, sbm, star, weighted
from repro.errors import SimRankError
from repro.simrank.engine import localpush_engine, multi_source_localpush
from repro.simrank.exact import linearized_simrank
from repro.simrank.kernels import (
    DTYPES,
    F32_UNIT_ROUNDOFF,
    KERNELS,
    PHASES,
    PhaseProfile,
    float32_error_bound,
    localpush_max_rounds,
    numba_available,
    resolve_kernel,
    shard_bounds,
    working_dtype,
)


def assert_bitwise(a, b) -> None:
    """The two CSR matrices are bitwise identical (values and storage)."""
    assert a.dtype == b.dtype
    assert np.array_equal(a.indptr, b.indptr)
    assert np.array_equal(a.indices, b.indices)
    assert np.array_equal(a.data, b.data)


def graphs():
    return [erdos_renyi(80, 0.08, 3), sbm(90, 5), star(12),
            weighted(40, 9), disconnected()]


class TestResolveKernel:
    def test_auto_resolves_to_fused(self):
        assert resolve_kernel("auto") == "fused"

    @pytest.mark.parametrize("name", ["scipy", "fused"])
    def test_explicit_kernels_resolve_to_themselves(self, name):
        assert resolve_kernel(name) == name

    def test_numba_degrades_to_fused_without_numba(self, monkeypatch):
        monkeypatch.setattr("repro.simrank.kernels.numba_available",
                            lambda: False)
        assert resolve_kernel("numba") == "fused"

    def test_numba_resolves_when_available(self, monkeypatch):
        monkeypatch.setattr("repro.simrank.kernels.numba_available",
                            lambda: True)
        assert resolve_kernel("numba") == "numba"

    def test_unknown_kernel_raises(self):
        with pytest.raises(SimRankError, match="kernel"):
            resolve_kernel("cython")

    def test_every_listed_kernel_resolves(self):
        for name in KERNELS:
            assert resolve_kernel(name) in ("scipy", "fused", "numba")

    def test_working_dtype(self):
        assert working_dtype("float64") == np.float64
        assert working_dtype("float32") == np.float32
        assert tuple(DTYPES) == ("float64", "float32")
        with pytest.raises(SimRankError, match="dtype"):
            working_dtype("float16")


class TestFloat32Bound:
    def test_bound_exceeds_epsilon(self):
        assert float32_error_bound(0.1, 0.6) > 0.1

    def test_rounds_terminate_the_residual_decay(self):
        # decay^rounds must fall below the push threshold (1-c)·ε — the
        # geometric-decay argument behind the bound's round count.
        for epsilon, decay in [(0.1, 0.6), (0.01, 0.6), (0.1, 0.8)]:
            rounds = localpush_max_rounds(epsilon, decay)
            assert decay ** rounds <= (1.0 - decay) * epsilon * (1 + 1e-12)

    def test_loose_threshold_needs_no_rounds(self):
        assert localpush_max_rounds(10.0, 0.6) == 0

    def test_rounding_term_grows_as_epsilon_shrinks(self):
        loose = float32_error_bound(0.1, 0.6) - 0.1
        tight = float32_error_bound(0.001, 0.6) - 0.001
        assert 0.0 < loose < tight

    def test_unit_roundoff_is_float32(self):
        assert F32_UNIT_ROUNDOFF == 2.0 ** -24


class TestShardBounds:
    def test_matches_array_split(self):
        for count, shards in [(10, 3), (8192, 1), (8193, 2), (7, 7), (9, 4)]:
            expected = [(int(part[0]), int(part[-1]) + 1)
                        for part in np.array_split(np.arange(count), shards)]
            assert shard_bounds(count, shards) == expected


class TestKernelBitIdentity:
    """fused/numba/auto == scipy, bitwise, per executor × worker count."""

    @pytest.mark.parametrize("kernel", ["fused", "auto", "numba"])
    @pytest.mark.parametrize("executor,workers", [
        ("serial", None), ("thread", 2), ("thread", 3), ("process", 2)])
    def test_full_matrix_bitwise(self, kernel, executor, workers):
        for graph in graphs():
            base = localpush_engine(graph, decay=0.6, epsilon=0.01,
                                    kernel="scipy", executor="serial")
            other = localpush_engine(graph, decay=0.6, epsilon=0.01,
                                     kernel=kernel, executor=executor,
                                     num_workers=workers)
            assert_bitwise(base.matrix, other.matrix)
            assert other.num_pushes == base.num_pushes
            assert other.num_rounds == base.num_rounds

    def test_multi_shard_rounds_bitwise(self):
        graph = sbm(90, 5)
        base = localpush_engine(graph, decay=0.6, epsilon=1e-3,
                                kernel="scipy", num_shards=3)
        for executor, workers in [("serial", None), ("process", 2)]:
            fused = localpush_engine(graph, decay=0.6, epsilon=1e-3,
                                     kernel="fused", num_shards=3,
                                     executor=executor, num_workers=workers)
            assert_bitwise(base.matrix, fused.matrix)

    @pytest.mark.parametrize("coalesce_every", [1, 3])
    def test_streamed_topk_bitwise(self, coalesce_every):
        for graph in graphs():
            base = localpush_engine(graph, decay=0.6, epsilon=1e-3,
                                    kernel="scipy", stream_top_k=8)
            fused = localpush_engine(graph, decay=0.6, epsilon=1e-3,
                                     kernel="fused", stream_top_k=8,
                                     coalesce_every=coalesce_every)
            assert_bitwise(base.matrix, fused.matrix)

    def test_single_source_rows_bitwise(self):
        graph = sbm(90, 5)
        sources = [0, 17, 55]
        base = multi_source_localpush(graph, sources, decay=0.6,
                                      epsilon=1e-3, kernel="scipy")
        fused = multi_source_localpush(graph, sources, decay=0.6,
                                       epsilon=1e-3, kernel="fused",
                                       executor="thread", num_workers=2)
        for b, f in zip(base, fused):
            assert b.source == f.source
            assert_bitwise(b.row, f.row)

    def test_float32_kernels_bitwise(self):
        for graph in graphs():
            base = localpush_engine(graph, decay=0.6, epsilon=0.01,
                                    kernel="scipy", dtype="float32")
            fused = localpush_engine(graph, decay=0.6, epsilon=0.01,
                                     kernel="fused", dtype="float32")
            assert base.matrix.dtype == np.float32
            assert_bitwise(base.matrix, fused.matrix)

    def test_result_reports_the_resolved_kernel(self):
        graph = star(6)
        assert localpush_engine(graph, kernel="auto").kernel == "fused"
        assert localpush_engine(graph, kernel="scipy").kernel == "scipy"
        if not numba_available():
            # Graceful degradation: requesting numba without the optional
            # dependency silently runs the (bit-identical) fused kernel.
            assert localpush_engine(graph, kernel="numba").kernel == "fused"

    def test_profile_accumulates_the_four_phases(self):
        profile = PhaseProfile()
        localpush_engine(sbm(90, 5), decay=0.6, epsilon=0.01,
                         kernel="fused", profile=profile)
        seconds = profile.as_dict()
        assert set(seconds) == set(PHASES)
        assert all(value >= 0.0 for value in seconds.values())
        assert sum(seconds.values()) > 0.0


class TestFloat32Sweep:
    """Hypothesis-driven float32 runs stay within the adjusted bound."""

    @settings(max_examples=15, deadline=None)
    @given(n=st.integers(20, 60), p=st.floats(0.05, 0.2),
           seed=st.integers(0, 10_000),
           epsilon=st.sampled_from([0.05, 0.1, 0.2]),
           decay=st.sampled_from([0.4, 0.6, 0.8]))
    def test_error_within_adjusted_bound(self, n, p, seed, epsilon, decay):
        graph = erdos_renyi(n, p, seed)
        exact = linearized_simrank(graph, decay=decay, tolerance=1e-12)
        result = localpush_engine(graph, epsilon=epsilon, decay=decay,
                                  prune=False, absorb_residual=True,
                                  kernel="fused", dtype="float32")
        dense = result.matrix.toarray().astype(np.float64)
        error = float(np.abs(dense - exact).max())
        assert error < float32_error_bound(epsilon, decay)

    @settings(max_examples=10, deadline=None)
    @given(n=st.integers(20, 50), p=st.floats(0.05, 0.2),
           seed=st.integers(0, 10_000))
    def test_fused_float32_matches_scipy_float32(self, n, p, seed):
        graph = erdos_renyi(n, p, seed)
        base = localpush_engine(graph, decay=0.6, epsilon=0.05,
                                kernel="scipy", dtype="float32")
        fused = localpush_engine(graph, decay=0.6, epsilon=0.05,
                                 kernel="fused", dtype="float32")
        assert_bitwise(base.matrix, fused.matrix)
