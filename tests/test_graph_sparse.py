"""Tests for sparse-matrix helpers (top-k pruning, row normalisation)."""

import numpy as np
import pytest
import scipy.sparse as sp

from repro.graphs.sparse import (
    dense_to_sparse_threshold,
    sparse_row_normalize,
    top_k_per_row,
)


class TestTopKPerRow:
    def test_keeps_k_largest(self):
        matrix = sp.csr_matrix(np.array([[0.1, 0.5, 0.3, 0.2],
                                         [0.9, 0.0, 0.8, 0.7]]))
        pruned = top_k_per_row(matrix, 2)
        dense = pruned.toarray()
        np.testing.assert_allclose(dense[0], [0.0, 0.5, 0.3, 0.0])
        np.testing.assert_allclose(dense[1], [0.9, 0.0, 0.8, 0.0])

    def test_rows_with_fewer_entries_untouched(self):
        matrix = sp.csr_matrix(np.array([[0.1, 0.0, 0.0], [0.0, 0.0, 0.0],
                                         [0.3, 0.2, 0.1]]))
        pruned = top_k_per_row(matrix, 2)
        assert pruned[0].nnz == 1
        assert pruned[1].nnz == 0
        assert pruned[2].nnz == 2

    def test_keep_diagonal(self):
        matrix = sp.csr_matrix(np.array([[0.01, 0.5, 0.4, 0.3]] ).repeat(4, axis=0))
        square = sp.lil_matrix((4, 4))
        square[0] = [0.01, 0.5, 0.4, 0.3]
        square[1] = [0.6, 0.02, 0.5, 0.4]
        square[2] = [0.6, 0.5, 0.03, 0.4]
        square[3] = [0.6, 0.5, 0.4, 0.04]
        pruned = top_k_per_row(square.tocsr(), 2, keep_diagonal=True)
        for row in range(4):
            assert pruned[row, row] != 0.0

    def test_invalid_k_raises(self):
        with pytest.raises(ValueError):
            top_k_per_row(sp.identity(3), 0)

    def test_preserves_shape_and_sparsity_bound(self):
        rng = np.random.default_rng(0)
        dense = rng.random((20, 20))
        pruned = top_k_per_row(sp.csr_matrix(dense), 5)
        assert pruned.shape == (20, 20)
        assert pruned.nnz <= 20 * 5


class TestSparseRowNormalize:
    def test_rows_sum_to_one(self):
        matrix = sp.csr_matrix(np.array([[1.0, 3.0], [2.0, 2.0]]))
        normalized = sparse_row_normalize(matrix)
        np.testing.assert_allclose(np.asarray(normalized.sum(axis=1)).ravel(), 1.0)

    def test_zero_rows_stay_zero(self):
        matrix = sp.csr_matrix((3, 3))
        normalized = sparse_row_normalize(matrix)
        assert normalized.nnz == 0


class TestDenseToSparseThreshold:
    def test_drops_small_entries(self):
        dense = np.array([[0.5, 1e-6], [0.0, 0.2]])
        sparse = dense_to_sparse_threshold(dense, 1e-3)
        assert sparse.nnz == 2
        assert sparse[0, 1] == 0.0
