"""Schema-validation tests for the LocalPush benchmark record.

``benchmarks/bench_localpush.py`` appends run records to
``BENCH_localpush.json``; every appended record must satisfy
``RECORD_SCHEMA`` (required keys, exact types, per-executor entries with
``speedup_vs_serial`` and ``num_workers``) and carry ``cpu_count`` so
process-pool speedups stay interpretable across machines.  The benchmark
script is not a package, so it is loaded by file path.
"""

import copy
import importlib.util
from pathlib import Path

import pytest

from repro.config import SimRankConfig

_BENCH_PATH = (Path(__file__).resolve().parent.parent / "benchmarks"
               / "bench_localpush.py")
_spec = importlib.util.spec_from_file_location("bench_localpush", _BENCH_PATH)
bench = importlib.util.module_from_spec(_spec)
_spec.loader.exec_module(bench)


def _valid_record() -> dict:
    executor = {"seconds": 0.5, "num_pushes": 100, "nnz": 1000}
    pooled = {**executor, "num_workers": 4, "speedup_vs_serial": 1.6,
              "bit_identical_to_serial": True}
    return {
        "benchmark": "localpush_executors",
        "mode": "smoke",
        "num_nodes": 600,
        "num_edges": 2700,
        "epsilon": 0.1,
        "decay": 0.6,
        "seed": 0,
        "cpu_count": 4,
        "num_workers": 4,
        "config": SimRankConfig(method="localpush", epsilon=0.1, decay=0.6,
                                workers=4).to_dict(),
        "backends": {"dict": {"seconds": 5.0, "num_pushes": 90, "nnz": 900},
                     "core": {"seconds": 0.5, "num_pushes": 100, "nnz": 1000,
                              "speedup_vs_dict": 10.0,
                              "max_abs_diff_vs_dict": 0.01}},
        "executors": {"serial": dict(executor),
                      "thread": dict(pooled),
                      "process": dict(pooled)},
        "kernels": {
            "epsilon": 0.01,
            "scipy": {"seconds": 1.0, "num_pushes": 500, "nnz": 5000},
            "fused": {"seconds": 0.5, "num_pushes": 500, "nnz": 5000,
                      "speedup_vs_scipy": 2.0,
                      "bit_identical_to_scipy": {"serial": True,
                                                 "thread": True,
                                                 "process": True}},
        },
        "float32": {
            "epsilon": 0.1, "decay": 0.6, "bound": 0.1001,
            "sweeps": [{"num_nodes": 300, "max_abs_err_float32": 0.02,
                        "max_abs_err_float64": 0.02, "within_bound": True}],
        },
        "profile": {
            "kernel": "fused", "executor": "serial", "total_seconds": 0.5,
            "phase_seconds": {"frontier": 0.1, "push": 0.2,
                              "merge": 0.15, "prune": 0.05},
        },
        "within_epsilon": True,
    }


class TestRecordSchema:
    def test_valid_record_passes(self):
        assert bench.validate_record(_valid_record()) is not None

    @pytest.mark.parametrize("missing", sorted(set(bench.RECORD_SCHEMA)))
    def test_missing_top_level_key_fails(self, missing):
        record = _valid_record()
        del record[missing]
        with pytest.raises(bench.RecordSchemaError, match=missing):
            bench.validate_record(record)

    def test_cpu_count_is_required_and_typed(self):
        record = _valid_record()
        record["cpu_count"] = "4"  # wrong type
        with pytest.raises(bench.RecordSchemaError, match="cpu_count"):
            bench.validate_record(record)

    def test_bool_is_not_an_int(self):
        record = _valid_record()
        record["num_nodes"] = True  # bool must not satisfy an int field
        with pytest.raises(bench.RecordSchemaError, match="num_nodes"):
            bench.validate_record(record)

    def test_int_is_an_acceptable_float(self):
        record = _valid_record()
        record["epsilon"] = 1  # JSON round-trips 1.0 as 1
        assert bench.validate_record(record)

    @pytest.mark.parametrize("executor", ["serial", "thread", "process"])
    def test_every_executor_entry_is_required(self, executor):
        record = _valid_record()
        del record["executors"][executor]
        with pytest.raises(bench.RecordSchemaError, match=executor):
            bench.validate_record(record)

    def test_pooled_executors_need_speedup_and_workers(self):
        record = _valid_record()
        del record["executors"]["process"]["speedup_vs_serial"]
        with pytest.raises(bench.RecordSchemaError, match="speedup_vs_serial"):
            bench.validate_record(record)
        record = _valid_record()
        del record["executors"]["thread"]["num_workers"]
        with pytest.raises(bench.RecordSchemaError, match="num_workers"):
            bench.validate_record(record)

    def test_dict_oracle_entry_required(self):
        record = _valid_record()
        del record["backends"]["dict"]
        with pytest.raises(bench.RecordSchemaError, match="dict"):
            bench.validate_record(record)

    def test_kernels_section_needs_per_executor_identity(self):
        record = _valid_record()
        del record["kernels"]["fused"]["bit_identical_to_scipy"]["process"]
        with pytest.raises(bench.RecordSchemaError,
                           match="bit_identical_to_scipy"):
            bench.validate_record(record)
        record = _valid_record()
        del record["kernels"]["scipy"]
        with pytest.raises(bench.RecordSchemaError, match="kernels"):
            bench.validate_record(record)

    def test_float32_section_needs_its_bound(self):
        record = _valid_record()
        del record["float32"]["bound"]
        with pytest.raises(bench.RecordSchemaError, match="bound"):
            bench.validate_record(record)

    def test_profile_section_needs_phase_seconds(self):
        record = _valid_record()
        del record["profile"]["phase_seconds"]
        with pytest.raises(bench.RecordSchemaError, match="phase_seconds"):
            bench.validate_record(record)

    def test_config_must_round_trip_as_simrank_config(self):
        record = _valid_record()
        record["config"]["num_workers"] = 4  # not a SimRankConfig field
        with pytest.raises(bench.RecordSchemaError, match="config"):
            bench.validate_record(record)
        record = _valid_record()
        record["config"]["epsilon"] = -1.0  # fails validation
        with pytest.raises(bench.RecordSchemaError, match="config"):
            bench.validate_record(record)

    def test_config_records_the_resolved_run_parameters(self):
        record = _valid_record()
        config = SimRankConfig.from_dict(record["config"])
        assert config.method == "localpush"
        assert config.epsilon == record["epsilon"]
        assert config.decay == record["decay"]
        assert config.workers == record["num_workers"]

    def test_validation_does_not_mutate(self):
        record = _valid_record()
        snapshot = copy.deepcopy(record)
        bench.validate_record(record)
        assert record == snapshot


class TestSmokeRecord:
    """End-to-end: a real (tiny) bench run emits a schema-valid record."""

    def test_smoke_run_produces_valid_record(self):
        record = bench.run(num_nodes=120, average_degree=4.0, epsilon=0.3,
                           decay=0.6, seed=0, smoke=True, num_workers=2)
        assert bench.validate_record(record)
        assert record["within_epsilon"] is True
        for executor in ("thread", "process"):
            assert record["executors"][executor]["bit_identical_to_serial"]
        fused = record["kernels"]["fused"]
        assert all(fused["bit_identical_to_scipy"].values())
        assert all(sweep["within_bound"]
                   for sweep in record["float32"]["sweeps"])
        assert set(record["profile"]["phase_seconds"]) \
            == {"frontier", "push", "merge", "prune"}
