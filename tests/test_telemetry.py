"""Unit suite for the :mod:`repro.telemetry` subsystem.

Covers the three halves on their own terms:

* **metrics** — typed instruments under one registry lock: idempotent
  registration, kind clashes, name/label validation, labelled series,
  histogram bucket accumulation and the snapshot shape;
* **tracing** — hierarchical spans (per-thread stacks), the bounded
  thread-safe recorder, the JSONL sink round-trip through
  :func:`repro.telemetry.load_trace`, and the no-op default's inertness;
* **exposition + summary + CLI** — the deterministic Prometheus text
  rendering (label escaping, integer formatting, histogram expansion),
  the versioned JSON twin, the pure summary functions behind
  ``repro-trace``, and the CLI's exit codes.

Plus the handle layer: ``TelemetryConfig`` validation/CLI bridging and
the ``Telemetry``/``DISABLED``/``resolve_telemetry`` contract every
instrumented layer relies on.
"""

import argparse
import json
import threading

import pytest

from repro.config import TelemetryConfig
from repro.errors import ConfigError, TelemetryError
from repro.telemetry import (DISABLED, METRICS_FORMAT_VERSION, NULL_TRACER,
                             TRACE_FORMAT_VERSION, JsonlSpanSink,
                             MetricsRegistry, SpanRecorder, Telemetry, Tracer,
                             aggregate_by_name, format_summary, json_snapshot,
                             load_trace, phase_seconds, prometheus_text,
                             resolve_telemetry, self_times,
                             telemetry_from_config, top_spans_by_self_time)
from repro.telemetry.__main__ import main as trace_main
from repro.telemetry.summary import build_tree
from repro.telemetry.tracing import NULL_SPAN


# --------------------------------------------------------------------- #
# Metrics
# --------------------------------------------------------------------- #
class TestMetricsRegistry:
    def test_counter_accumulates_per_label_set(self):
        registry = MetricsRegistry()
        counter = registry.counter("repro_test_total", "help text")
        counter.inc()
        counter.inc(2.5)
        counter.inc(1.0, path="exact")
        assert counter.value() == 3.5
        assert counter.value(path="exact") == 1.0
        assert counter.value(path="cached") == 0.0

    def test_counter_rejects_negative_increments(self):
        counter = MetricsRegistry().counter("repro_test_total")
        with pytest.raises(TelemetryError, match="cannot decrease"):
            counter.inc(-1.0)

    def test_gauge_moves_both_ways(self):
        gauge = MetricsRegistry().gauge("repro_test_gauge")
        gauge.set(5.0)
        gauge.inc(-2.0)
        assert gauge.value() == 3.0
        gauge.set(0.25, path="exact")
        assert gauge.value(path="exact") == 0.25

    def test_histogram_cumulative_buckets(self):
        hist = MetricsRegistry().histogram(
            "repro_test_seconds", buckets=(0.1, 1.0, 10.0))
        for value in (0.05, 0.5, 5.0, 50.0):
            hist.observe(value)
        series = hist.series()[()]
        assert series.bucket_counts == [1, 2, 3]  # cumulative; +Inf = count
        assert series.count == 4
        assert series.sum == pytest.approx(55.55)

    def test_histogram_buckets_must_increase(self):
        registry = MetricsRegistry()
        with pytest.raises(TelemetryError, match="strictly increasing"):
            registry.histogram("repro_bad_seconds", buckets=(1.0, 1.0))
        with pytest.raises(TelemetryError, match="strictly increasing"):
            registry.histogram("repro_bad2_seconds", buckets=())

    def test_registration_is_idempotent_per_name(self):
        registry = MetricsRegistry()
        first = registry.counter("repro_test_total", "first help")
        second = registry.counter("repro_test_total", "second help")
        assert first is second
        assert second.help == "first help"  # the original wins

    def test_kind_clash_is_an_error(self):
        registry = MetricsRegistry()
        registry.counter("repro_test_total")
        with pytest.raises(TelemetryError, match="already registered"):
            registry.gauge("repro_test_total")

    def test_invalid_names_and_labels_rejected(self):
        registry = MetricsRegistry()
        with pytest.raises(TelemetryError, match="invalid metric name"):
            registry.counter("0starts_with_digit")
        with pytest.raises(TelemetryError, match="invalid metric name"):
            registry.counter("has spaces")
        counter = registry.counter("repro_test_total")
        with pytest.raises(TelemetryError, match="invalid label name"):
            counter.inc(1.0, **{"bad-label": "x"})

    def test_snapshot_shape(self):
        registry = MetricsRegistry()
        registry.counter("repro_a_total", "a").inc(2.0, path="exact")
        registry.gauge("repro_b").set(1.5)
        registry.histogram("repro_c_seconds", buckets=(1.0,)).observe(0.5)
        snap = registry.snapshot()
        assert set(snap) == {"repro_a_total", "repro_b", "repro_c_seconds"}
        assert snap["repro_a_total"]["kind"] == "counter"
        assert snap["repro_a_total"]["series"] == [
            {"labels": {"path": "exact"}, "value": 2.0}]
        assert snap["repro_c_seconds"]["series"][0]["bucket_counts"] == [1]
        json.dumps(snap)  # JSON-serialisable, by contract

    def test_concurrent_increments_are_atomic(self):
        counter = MetricsRegistry().counter("repro_test_total")
        threads = [threading.Thread(
            target=lambda: [counter.inc() for _ in range(1000)])
            for _ in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert counter.value() == 8000  # no lost updates


# --------------------------------------------------------------------- #
# Tracing
# --------------------------------------------------------------------- #
class TestTracer:
    def test_span_hierarchy_and_attributes(self):
        recorder = SpanRecorder()
        tracer = Tracer([recorder])
        with tracer.span("outer", kind="test") as outer:
            with tracer.span("inner") as inner:
                inner.set("n", 3)
        spans = {span["name"]: span for span in recorder.spans()}
        assert set(spans) == {"outer", "inner"}
        assert spans["outer"]["parent_id"] is None
        assert spans["inner"]["parent_id"] == spans["outer"]["span_id"]
        assert spans["outer"]["attributes"] == {"kind": "test"}
        assert spans["inner"]["attributes"] == {"n": 3}
        assert spans["inner"]["duration"] >= 0.0
        # Children complete (and record) before their parents.
        assert [s["name"] for s in recorder.spans()] == ["inner", "outer"]

    def test_sibling_spans_share_a_parent(self):
        recorder = SpanRecorder()
        tracer = Tracer([recorder])
        with tracer.span("root"):
            with tracer.span("a"):
                pass
            with tracer.span("b"):
                pass
        spans = {span["name"]: span for span in recorder.spans()}
        assert spans["a"]["parent_id"] == spans["root"]["span_id"]
        assert spans["b"]["parent_id"] == spans["root"]["span_id"]

    def test_cross_thread_spans_are_new_roots(self):
        recorder = SpanRecorder()
        tracer = Tracer([recorder])

        def worker():
            with tracer.span("threaded"):
                pass

        with tracer.span("main"):
            thread = threading.Thread(target=worker)
            thread.start()
            thread.join()
        spans = {span["name"]: span for span in recorder.spans()}
        assert spans["threaded"]["parent_id"] is None  # honest for pools

    def test_record_complete_backdates_start(self):
        recorder = SpanRecorder()
        tracer = Tracer([recorder])
        tracer.record_complete("localpush.push", 0.25, phase="push", round=2)
        (span,) = recorder.spans()
        assert span["duration"] == 0.25
        assert span["attributes"] == {"phase": "push", "round": 2}

    def test_recorder_bounds_and_drop_accounting(self):
        recorder = SpanRecorder(max_spans=2)
        tracer = Tracer([recorder])
        for i in range(5):
            with tracer.span(f"s{i}"):
                pass
        assert len(recorder.spans()) == 2
        assert recorder.dropped == 3
        assert recorder.tree()["dropped"] == 3
        recorder.clear()
        assert recorder.spans() == [] and recorder.dropped == 0

    def test_recorder_rejects_nonpositive_bound(self):
        with pytest.raises(TelemetryError, match="max_spans"):
            SpanRecorder(max_spans=0)

    def test_tree_payload_is_versioned_and_flat(self):
        recorder = SpanRecorder()
        tracer = Tracer([recorder])
        with tracer.span("root"):
            with tracer.span("child"):
                pass
        tree = recorder.tree()
        assert tree["version"] == TRACE_FORMAT_VERSION
        assert {span["name"] for span in tree["spans"]} == {"root", "child"}
        json.dumps(tree)  # artefact-embeddable

    def test_jsonl_sink_roundtrip(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        sink = JsonlSpanSink(path)
        tracer = Tracer([sink])
        with tracer.span("outer"):
            with tracer.span("inner", n=1):
                pass
        sink.close()
        spans = load_trace(path)
        assert [span["name"] for span in spans] == ["inner", "outer"]
        assert spans[0]["attributes"] == {"n": 1}
        raw = path.read_text().splitlines()
        assert all(json.loads(line)["v"] == TRACE_FORMAT_VERSION
                   for line in raw)

    def test_load_trace_rejects_malformed_lines(self, tmp_path):
        bad = tmp_path / "bad.jsonl"
        bad.write_text("not json\n")
        with pytest.raises(TelemetryError, match="not valid JSON"):
            load_trace(bad)
        bad.write_text('{"v": 999, "name": "x", "span_id": 1}\n')
        with pytest.raises(TelemetryError, match="unsupported trace format"):
            load_trace(bad)
        bad.write_text('{"v": 1, "name": "x"}\n')
        with pytest.raises(TelemetryError, match="missing"):
            load_trace(bad)
        bad.write_text('[1, 2]\n')
        with pytest.raises(TelemetryError, match="expected a JSON object"):
            load_trace(bad)

    def test_null_tracer_is_inert(self):
        span = NULL_TRACER.span("anything", n=1)
        assert span is NULL_SPAN  # one shared instance, no allocation
        with span as entered:
            entered.set("k", "v")  # all no-ops
        assert NULL_TRACER.enabled is False
        assert NULL_TRACER.record_complete("x", 1.0) is None

    def test_concurrent_recording_loses_nothing(self):
        recorder = SpanRecorder(max_spans=10_000)
        tracer = Tracer([recorder])

        def worker():
            for _ in range(100):
                with tracer.span("w"):
                    pass

        threads = [threading.Thread(target=worker) for _ in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        spans = recorder.spans()
        assert len(spans) == 800
        ids = [span["span_id"] for span in spans]
        assert len(set(ids)) == 800  # unique ids across threads


# --------------------------------------------------------------------- #
# Exposition
# --------------------------------------------------------------------- #
class TestExposition:
    def test_prometheus_text_snapshot(self):
        """Pin the rendering byte for byte — no #-comment drift."""
        registry = MetricsRegistry()
        registry.counter("repro_q_total", "Total queries.").inc(9)
        gauge = registry.gauge("repro_lat", "Latency.")
        gauge.set(0.5, path="exact", quantile="p50")
        assert prometheus_text(registry) == (
            "# HELP repro_q_total Total queries.\n"
            "# TYPE repro_q_total counter\n"
            "repro_q_total 9\n"
            "# HELP repro_lat Latency.\n"
            "# TYPE repro_lat gauge\n"
            'repro_lat{path="exact",quantile="p50"} 0.5\n')

    def test_integer_values_render_without_decimal(self):
        registry = MetricsRegistry()
        registry.counter("repro_n_total").inc(3.0)
        assert "repro_n_total 3\n" in prometheus_text(registry)

    def test_histogram_expansion(self):
        registry = MetricsRegistry()
        hist = registry.histogram("repro_h_seconds", "H.", buckets=(0.1, 1.0))
        hist.observe(0.05)
        hist.observe(5.0)
        text = prometheus_text(registry)
        assert 'repro_h_seconds_bucket{le="0.1"} 1' in text
        assert 'repro_h_seconds_bucket{le="1"} 1' in text
        assert 'repro_h_seconds_bucket{le="+Inf"} 2' in text
        assert "repro_h_seconds_sum 5.05" in text
        assert "repro_h_seconds_count 2" in text

    def test_label_values_are_escaped(self):
        registry = MetricsRegistry()
        registry.counter("repro_e_total").inc(
            1.0, path='a"b\\c\nd')
        text = prometheus_text(registry)
        assert r'path="a\"b\\c\nd"' in text
        # The escaped text round-trips: unescape recovers the original.
        escaped = text.split('path="')[1].split('"}')[0]
        unescaped = (escaped.replace(r"\\", "\x00").replace(r"\n", "\n")
                     .replace(r'\"', '"').replace("\x00", "\\"))
        assert unescaped == 'a"b\\c\nd'

    def test_empty_registry_renders_empty(self):
        assert prometheus_text(MetricsRegistry()) == ""

    def test_json_snapshot_versioned(self):
        registry = MetricsRegistry()
        registry.counter("repro_q_total", "Q.").inc(2)
        snap = json_snapshot(registry)
        assert snap["version"] == METRICS_FORMAT_VERSION
        assert snap["metrics"]["repro_q_total"]["series"] == [
            {"labels": {}, "value": 2.0}]


# --------------------------------------------------------------------- #
# Summary + CLI
# --------------------------------------------------------------------- #
def _span(name, span_id, parent_id=None, duration=1.0, **attributes):
    return {"name": name, "span_id": span_id, "parent_id": parent_id,
            "start": 0.0, "duration": duration, "attributes": attributes}


class TestSummary:
    def test_build_tree_groups_children_and_orphans(self):
        spans = [_span("root", 1), _span("child", 2, parent_id=1),
                 _span("orphan", 3, parent_id=99)]
        tree = build_tree(spans)
        assert [s["name"] for s in tree[None]] == ["root", "orphan"]
        assert [s["name"] for s in tree[1]] == ["child"]

    def test_self_times_subtract_direct_children(self):
        spans = [_span("root", 1, duration=3.0),
                 _span("a", 2, parent_id=1, duration=1.0),
                 _span("b", 3, parent_id=1, duration=1.5)]
        selves = self_times(spans)
        assert selves[1] == pytest.approx(0.5)
        assert selves[2] == 1.0 and selves[3] == 1.5

    def test_self_time_floors_at_zero(self):
        # Overlapping children can sum past the parent; never negative.
        spans = [_span("root", 1, duration=1.0),
                 _span("a", 2, parent_id=1, duration=2.0)]
        assert self_times(spans)[1] == 0.0

    def test_aggregate_by_name(self):
        spans = [_span("push", 1, duration=1.0),
                 _span("push", 2, duration=2.0),
                 _span("merge", 3, duration=0.5)]
        agg = aggregate_by_name(spans)
        assert agg["push"] == {"count": 2.0, "total_seconds": 3.0,
                               "self_seconds": 3.0}
        assert agg["merge"]["count"] == 1.0

    def test_top_spans_ranking_is_deterministic(self):
        spans = [_span("a", 2, duration=1.0), _span("b", 1, duration=1.0),
                 _span("c", 3, duration=5.0)]
        top = top_spans_by_self_time(spans, limit=2)
        assert [span["name"] for span, _ in top] == ["c", "b"]  # ties → id

    def test_phase_seconds_filters_by_prefix(self):
        spans = [_span("localpush.push", 1, duration=1.0),
                 _span("localpush.push", 2, duration=0.5),
                 _span("localpush.merge", 3, duration=0.25),
                 _span("serve.exact_batch", 4, duration=9.0)]
        assert phase_seconds(spans) == {"push": 1.5, "merge": 0.25}
        assert phase_seconds(spans, prefix="serve") == {"exact_batch": 9.0}

    def test_format_summary_sections(self):
        spans = [_span("localpush.push", 1, duration=1.0, round=0)]
        report = format_summary(spans)
        assert "spans: 1 (1 roots)" in report
        assert "localpush.push" in report
        assert "engine phases (localpush.*):" in report
        assert "top 1 spans by self time:" in report

    def test_cli_summarises_a_trace(self, tmp_path, capsys):
        path = tmp_path / "t.jsonl"
        sink = JsonlSpanSink(path)
        tracer = Tracer([sink])
        with tracer.span("localpush.push", phase="push"):
            pass
        sink.close()
        assert trace_main([str(path)]) == 0
        out = capsys.readouterr().out
        assert "localpush.push" in out

    def test_cli_error_exits(self, tmp_path, capsys):
        assert trace_main([str(tmp_path / "missing.jsonl")]) == 2
        bad = tmp_path / "bad.jsonl"
        bad.write_text("nope\n")
        assert trace_main([str(bad)]) == 2
        good = tmp_path / "good.jsonl"
        good.write_text("")
        assert trace_main([str(good), "--limit", "0"]) == 2


# --------------------------------------------------------------------- #
# Config + handle
# --------------------------------------------------------------------- #
class TestTelemetryConfig:
    def test_defaults_are_off(self):
        config = TelemetryConfig()
        assert config.enabled is False
        assert config.trace_path is None
        assert config.max_recorded_spans == 4096

    def test_validation(self):
        with pytest.raises(ConfigError):
            TelemetryConfig(max_recorded_spans=0)
        with pytest.raises(ConfigError):
            TelemetryConfig(trace_path=123)

    def test_roundtrip_and_overrides(self):
        config = TelemetryConfig(enabled=True, trace_path="t.jsonl")
        assert TelemetryConfig.from_dict(config.to_dict()) == config
        assert config.with_overrides(enabled=False).enabled is False
        with pytest.raises(ConfigError):
            config.with_overrides(nope=1)

    def test_from_cli_args_bridges_the_flags(self):
        args = argparse.Namespace(telemetry=False, trace_path=None,
                                  max_recorded_spans=None)
        assert TelemetryConfig.from_cli_args(args).enabled is False
        args.telemetry = True
        assert TelemetryConfig.from_cli_args(args).enabled is True
        # A trace path implies enabled even without the switch.
        args.telemetry = False
        args.trace_path = "out.jsonl"
        config = TelemetryConfig.from_cli_args(args)
        assert config.enabled is True and config.trace_path == "out.jsonl"


class TestTelemetryHandle:
    def test_disabled_is_the_none_default(self):
        assert resolve_telemetry(None) is DISABLED
        assert DISABLED.enabled is False
        assert DISABLED.tracer is NULL_TRACER
        assert DISABLED.phase_profile() is None
        DISABLED.close()  # no sink: a no-op

    def test_explicit_handle_passes_through(self):
        handle = Telemetry()
        assert resolve_telemetry(handle) is handle
        assert handle.enabled is True
        assert handle.tracer.enabled is True

    def test_from_config_disabled(self):
        assert telemetry_from_config(None) is DISABLED
        assert telemetry_from_config(TelemetryConfig()) is DISABLED

    def test_from_config_enabled_records_and_sinks(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        config = TelemetryConfig(enabled=True, trace_path=str(path),
                                 max_recorded_spans=7)
        handle = telemetry_from_config(config)
        assert handle.enabled is True
        assert handle.recorder.max_spans == 7
        with handle.tracer.span("x"):
            pass
        handle.close()
        assert [s["name"] for s in handle.recorder.spans()] == ["x"]
        assert [s["name"] for s in load_trace(path)] == ["x"]

    def test_handles_do_not_share_registries(self):
        a, b = Telemetry(), Telemetry()
        a.registry.counter("repro_x_total").inc()
        assert b.registry.counter("repro_x_total").value() == 0.0
        assert a.registry is not DISABLED.registry
