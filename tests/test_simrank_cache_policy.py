"""Suite for the operator-cache eviction and reuse policy.

Covers the two policies added on top of the PR-2 round-trip cache:

* **LRU eviction under a byte cap** — stores beyond ``max_bytes`` evict
  the least-recently-used entries (exact hits refresh recency), counted
  separately (``lru_evictions``) from corruption evictions.
* **Cross-ε / cross-k reuse** — an entry computed at tighter ``ε′ ≤ ε``
  with ``k′ ≥ k`` serves the looser request after re-pruning; the
  reverse direction never hits.  Reuse hits (``reuse_hits``) are
  distinguished from exact key hits (``exact_hits``).
"""

import numpy as np
import pytest

from repro.config import SimRankConfig
from repro.datasets.synthetic import SyntheticGraphConfig, generate_synthetic_graph
from repro.errors import ConfigError
from repro.graphs.graph import Graph
from repro.graphs.sparse import top_k_per_row
from repro.simrank.cache import OperatorCache, get_operator_cache
from repro.simrank.topk import simrank_operator


def _operator(graph, *, cache=None, cache_max_bytes=None, num_workers=None,
              **fields):
    """``simrank_operator`` via the config API, with a cache handle."""
    if num_workers is not None:
        fields["workers"] = num_workers
    config = SimRankConfig(**fields)
    if cache is not None:
        directory = cache.directory if isinstance(cache, OperatorCache) else cache
        config = config.with_overrides(cache_dir=str(directory),
                                       cache_max_bytes=cache_max_bytes)
    return simrank_operator(graph, config)


@pytest.fixture()
def graph() -> Graph:
    config = SyntheticGraphConfig(
        num_nodes=120, num_classes=3, num_features=4, average_degree=6.0,
        homophily=0.3, name="cache-policy-sbm")
    return generate_synthetic_graph(config, seed=0)


@pytest.fixture()
def cache(tmp_path) -> OperatorCache:
    # Via the registry so the instance the pipeline resolves from
    # ``cache_dir`` is this one (shared counters).
    return get_operator_cache(tmp_path / "operators")


def _entry_bytes(cache: OperatorCache) -> int:
    return sum(path.stat().st_size
               for path in cache.directory.glob("simrank-*.npz"))


class TestLRUEviction:
    def test_stores_over_the_cap_evict_oldest(self, graph, cache):
        first = _operator(graph, method="localpush", epsilon=0.2,
                                 top_k=8, cache=cache)
        assert not first.cache_hit
        cache.max_bytes = _entry_bytes(cache) + 16  # room for exactly one
        # A tighter request cannot reuse the looser entry: genuine
        # miss → store → the byte cap evicts the ε=0.2 entry.
        _operator(graph, method="localpush", epsilon=0.1, top_k=8,
                         cache=cache)
        assert len(cache) == 1
        assert cache.lru_evictions == 1
        assert _operator(graph, method="localpush", epsilon=0.1,
                                top_k=8, cache=cache).cache_hit
        # The evicted ε=0.2/k=8 file is gone: a k=16 request at ε=0.2
        # cannot be served by the surviving k=8 entry either.
        refetch = _operator(graph, method="localpush", epsilon=0.2,
                                   top_k=16, cache=cache)
        assert not refetch.cache_hit

    def test_exact_hits_refresh_recency(self, graph, cache):
        # Stored tightest-last so every store is a genuine miss.
        _operator(graph, method="localpush", epsilon=0.2, top_k=8,
                         cache=cache)  # A
        _operator(graph, method="localpush", epsilon=0.1, top_k=8,
                         cache=cache)  # B
        size_two = _entry_bytes(cache)
        # Touch A so B becomes least recently used.
        assert _operator(graph, method="localpush", epsilon=0.2,
                                top_k=8, cache=cache).cache_hit
        cache.max_bytes = size_two * 5 // 4  # room for two entries, not three
        _operator(graph, method="localpush", epsilon=0.05, top_k=8,
                         cache=cache)  # C — evicts B, not A
        assert cache.lru_evictions == 1
        assert len(cache) == 2
        hits_before = cache.exact_hits
        assert _operator(graph, method="localpush", epsilon=0.2,
                                top_k=8, cache=cache).cache_hit
        assert cache.exact_hits == hits_before + 1

    def test_single_oversized_entry_is_retained(self, graph, cache):
        cache.max_bytes = 1  # smaller than any entry
        cold = _operator(graph, method="localpush", epsilon=0.1,
                                top_k=8, cache=cache)
        assert not cold.cache_hit
        assert len(cache) == 1  # the just-stored entry survives the cap
        assert _operator(graph, method="localpush", epsilon=0.1,
                                top_k=8, cache=cache).cache_hit

    def test_corruption_evictions_counted_separately(self, graph, cache):
        _operator(graph, method="localpush", epsilon=0.1, top_k=8,
                         cache=cache)
        path = next(cache.directory.glob("simrank-*.npz"))
        path.write_bytes(b"garbage")
        refreshed = _operator(graph, method="localpush", epsilon=0.1,
                                     top_k=8, cache=cache)
        assert not refreshed.cache_hit
        assert cache.evictions == 1
        assert cache.lru_evictions == 0

    def test_invalid_cap_rejected(self, tmp_path):
        with pytest.raises(ValueError):
            OperatorCache(tmp_path / "bad", max_bytes=0)

    def test_invalid_cap_rejected_on_late_update_too(self, graph, tmp_path):
        """Every route that updates the cap validates it — a zero cap on a
        memoised instance must not silently evict the whole directory."""
        cache = OperatorCache(tmp_path / "late")
        with pytest.raises(ValueError):
            cache.max_bytes = 0
        with pytest.raises(ValueError):
            get_operator_cache(cache.directory, max_bytes=-5)
        with pytest.raises(ValueError):
            _operator(graph, method="localpush", epsilon=0.1, top_k=8,
                             cache=cache, cache_max_bytes=-1)

    def test_cap_reaches_shared_instance_through_pipeline(self, graph, tmp_path):
        directory = tmp_path / "capped"
        _operator(graph, method="localpush", epsilon=0.1, top_k=8,
                         cache=str(directory), cache_max_bytes=123456)
        assert get_operator_cache(directory).max_bytes == 123456


class TestCrossEpsilonReuse:
    def test_tighter_epsilon_serves_looser_request(self, graph, cache):
        cold = _operator(graph, method="localpush", epsilon=0.05,
                                top_k=8, cache=cache)
        warm = _operator(graph, method="localpush", epsilon=0.1,
                                top_k=8, cache=cache)
        assert warm.cache_hit
        assert cache.reuse_hits == 1 and cache.exact_hits == 0
        assert cache.stores == 1  # nothing recomputed
        # Same k: the tighter entry is served as-is, with the request's ε.
        assert warm.epsilon == 0.1
        assert warm.reuse_source_epsilon == 0.05
        np.testing.assert_array_equal(warm.matrix.toarray(),
                                      cold.matrix.toarray())

    def test_looser_epsilon_never_serves_tighter_request(self, graph, cache):
        _operator(graph, method="localpush", epsilon=0.2, top_k=8,
                         cache=cache)
        second = _operator(graph, method="localpush", epsilon=0.05,
                                  top_k=8, cache=cache)
        assert not second.cache_hit
        assert cache.reuse_hits == 0
        assert cache.stores == 2

    def test_larger_k_serves_smaller_k_after_reprune(self, graph, cache):
        cold = _operator(graph, method="localpush", epsilon=0.1,
                                top_k=16, cache=cache)
        warm = _operator(graph, method="localpush", epsilon=0.1,
                                top_k=8, cache=cache)
        assert warm.cache_hit and cache.reuse_hits == 1
        assert warm.top_k == 8 and warm.reuse_source_top_k == 16
        assert np.diff(warm.matrix.indptr).max() <= 8
        expected = top_k_per_row(cold.matrix, 8, keep_diagonal=True)
        np.testing.assert_array_equal(warm.matrix.toarray(),
                                      expected.toarray())

    def test_smaller_k_never_serves_larger_k(self, graph, cache):
        _operator(graph, method="localpush", epsilon=0.1, top_k=8,
                         cache=cache)
        second = _operator(graph, method="localpush", epsilon=0.1,
                                  top_k=16, cache=cache)
        assert not second.cache_hit
        assert cache.reuse_hits == 0

    def test_full_matrix_reuse_refloors_the_prune(self, graph, cache):
        _operator(graph, method="localpush", epsilon=0.05,
                         top_k=None, cache=cache)
        warm = _operator(graph, method="localpush", epsilon=0.1,
                                top_k=None, cache=cache)
        assert warm.cache_hit and cache.reuse_hits == 1
        offdiag = warm.matrix.copy().tolil()
        offdiag.setdiag(0)
        values = offdiag.tocsr()
        values.eliminate_zeros()
        if values.nnz:
            assert values.data.min() >= 0.1 / 10.0
        assert (warm.matrix.diagonal() > 0).all()

    def test_topk_entry_never_serves_full_matrix_request(self, graph, cache):
        _operator(graph, method="localpush", epsilon=0.05, top_k=8,
                         cache=cache)
        second = _operator(graph, method="localpush", epsilon=0.1,
                                  top_k=None, cache=cache)
        assert not second.cache_hit

    def test_row_normalize_must_match(self, graph, cache):
        _operator(graph, method="localpush", epsilon=0.05, top_k=16,
                         cache=cache)
        normalized = _operator(graph, method="localpush", epsilon=0.1,
                                      top_k=8, row_normalize=True,
                                      cache=cache)
        assert not normalized.cache_hit  # raw entries never serve normalized
        warm = _operator(graph, method="localpush", epsilon=0.1,
                                top_k=4, row_normalize=True, cache=cache)
        assert warm.cache_hit and cache.reuse_hits == 1
        sums = np.asarray(warm.matrix.sum(axis=1)).ravel()
        np.testing.assert_allclose(sums[sums > 0], 1.0)

    def test_reuse_prefers_the_closest_dominating_entry(self, graph, cache):
        # Stored loosest-first so both are genuine stores.
        _operator(graph, method="localpush", epsilon=0.08, top_k=8,
                         cache=cache)
        _operator(graph, method="localpush", epsilon=0.02, top_k=8,
                         cache=cache)
        assert cache.stores == 2
        warm = _operator(graph, method="localpush", epsilon=0.1,
                                top_k=8, cache=cache)
        assert warm.cache_hit
        assert warm.reuse_source_epsilon == 0.08  # largest ε′ ≤ ε wins

    def test_reuse_does_not_cross_graphs(self, graph, cache):
        other = generate_synthetic_graph(SyntheticGraphConfig(
            num_nodes=120, num_classes=3, num_features=4, average_degree=6.0,
            homophily=0.3, name="cache-policy-sbm"), seed=1)
        _operator(graph, method="localpush", epsilon=0.05, top_k=8,
                         cache=cache)
        second = _operator(other, method="localpush", epsilon=0.1,
                                  top_k=8, cache=cache)
        assert not second.cache_hit

    def test_executor_choice_hits_the_same_key_exactly(self, graph, cache):
        """The key excludes the executor: a run with a different executor
        (same request) is an exact hit, not a reuse hit."""
        cold = _operator(graph, method="localpush", epsilon=0.1,
                                top_k=8, executor="serial", cache=cache)
        warm = _operator(graph, method="localpush", epsilon=0.1,
                                top_k=8, executor="process", num_workers=2,
                                cache=cache)
        assert warm.cache_hit
        assert cache.exact_hits == 1 and cache.reuse_hits == 0
        np.testing.assert_array_equal(warm.matrix.toarray(),
                                      cold.matrix.toarray())

    def test_counters_are_consistent(self, graph, cache):
        _operator(graph, method="localpush", epsilon=0.05, top_k=8,
                         cache=cache)  # miss + store
        _operator(graph, method="localpush", epsilon=0.05, top_k=8,
                         cache=cache)  # exact hit
        _operator(graph, method="localpush", epsilon=0.1, top_k=8,
                         cache=cache)  # reuse hit
        _operator(graph, method="localpush", epsilon=0.01, top_k=8,
                         cache=cache)  # miss + store
        assert cache.exact_hits == 1
        assert cache.reuse_hits == 1
        assert cache.hits == cache.exact_hits + cache.reuse_hits == 2
        assert cache.misses == 2
        assert cache.stores == 2
