"""Tests for repro.utils.rng."""

import numpy as np
import pytest

from repro.utils.rng import ensure_rng, seed_from, spawn_rngs


class TestEnsureRng:
    def test_none_returns_generator(self):
        assert isinstance(ensure_rng(None), np.random.Generator)

    def test_int_seed_is_deterministic(self):
        a = ensure_rng(42).random(5)
        b = ensure_rng(42).random(5)
        np.testing.assert_allclose(a, b)

    def test_different_seeds_differ(self):
        a = ensure_rng(1).random(5)
        b = ensure_rng(2).random(5)
        assert not np.allclose(a, b)

    def test_generator_passthrough(self):
        generator = np.random.default_rng(0)
        assert ensure_rng(generator) is generator

    def test_invalid_type_raises(self):
        with pytest.raises(TypeError):
            ensure_rng("not-a-seed")


class TestSpawnRngs:
    def test_count(self):
        assert len(spawn_rngs(0, 4)) == 4

    def test_deterministic_streams(self):
        first = [rng.random() for rng in spawn_rngs(7, 3)]
        second = [rng.random() for rng in spawn_rngs(7, 3)]
        np.testing.assert_allclose(first, second)

    def test_streams_are_independent(self):
        streams = [rng.random(4) for rng in spawn_rngs(0, 3)]
        assert not np.allclose(streams[0], streams[1])
        assert not np.allclose(streams[1], streams[2])

    def test_negative_count_raises(self):
        with pytest.raises(ValueError):
            spawn_rngs(0, -1)

    def test_spawn_from_generator(self):
        rngs = spawn_rngs(np.random.default_rng(0), 2)
        assert len(rngs) == 2


def test_seed_from_returns_int():
    value = seed_from(np.random.default_rng(0))
    assert isinstance(value, int)
    assert 0 <= value < 2**31
