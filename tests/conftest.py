"""Shared fixtures for the test suite.

The collection policy lives declaratively in ``pyproject.toml``
(``[tool.pytest.ini_options]``): the ``slow`` marker is registered there
and the fast default selection comes from ``addopts = -m 'not slow'``,
so the tier-1 command ``python -m pytest -x -q`` stays at seed runtime.
Select slow tests explicitly with ``-m slow`` (or run everything with
``-m "slow or not slow"``) — the last ``-m`` on the command line wins
over the addopts default.  The one hook kept here is the node-id escape
hatch: a slow test requested directly by node id runs rather than
silently reporting "deselected".
"""

from __future__ import annotations

import numpy as np
import pytest

FAST_DEFAULT_MARKEXPR = "not slow"


def pytest_configure(config):
    # Naming a test by node id overrides the fast default (mirroring the
    # explicit `-m` override): clear the addopts-supplied markexpr so a
    # directly requested slow test actually runs.  A user-typed `-m` is
    # indistinguishable only when it equals the default itself, in which
    # case clearing it changes nothing for non-slow selections.
    if config.option.markexpr == FAST_DEFAULT_MARKEXPR and any(
            "::" in str(arg) for arg in config.invocation_params.args):
        config.option.markexpr = ""


from repro.datasets.dataset import Dataset
from repro.datasets.splits import stratified_splits
from repro.datasets.synthetic import SyntheticGraphConfig, generate_synthetic_graph
from repro.graphs.graph import Graph


@pytest.fixture(scope="session")
def tiny_graph() -> Graph:
    """A hand-built 6-node graph with features and labels.

    Topology (two triangle-ish communities joined by one edge)::

        0 - 1    3 - 4
        |   |    |   |
        +-2-+    +-5-+
            \\____/
    """
    edges = [(0, 1), (0, 2), (1, 2), (3, 4), (3, 5), (4, 5), (2, 3)]
    features = np.array([
        [1.0, 0.0], [0.9, 0.1], [1.1, -0.1],
        [0.0, 1.0], [0.1, 0.9], [-0.1, 1.1],
    ])
    labels = np.array([0, 0, 0, 1, 1, 1])
    return Graph.from_edges(6, edges, features=features, labels=labels, name="tiny")


@pytest.fixture(scope="session")
def small_heterophilous_graph() -> Graph:
    """A ~160-node heterophilous synthetic graph for model tests."""
    config = SyntheticGraphConfig(
        num_nodes=160, num_classes=3, num_features=12, average_degree=5.0,
        homophily=0.2, feature_signal=1.5, name="small-hetero")
    return generate_synthetic_graph(config, seed=3)


@pytest.fixture(scope="session")
def small_homophilous_graph() -> Graph:
    """A ~160-node homophilous synthetic graph."""
    config = SyntheticGraphConfig(
        num_nodes=160, num_classes=3, num_features=12, average_degree=5.0,
        homophily=0.8, feature_signal=1.5, name="small-homo")
    return generate_synthetic_graph(config, seed=4)


@pytest.fixture(scope="session")
def small_dataset(small_heterophilous_graph) -> Dataset:
    """The heterophilous graph wrapped with three stratified splits."""
    splits = stratified_splits(small_heterophilous_graph.labels, num_splits=3, seed=1)
    return Dataset(graph=small_heterophilous_graph, splits=splits, name="small-hetero")


@pytest.fixture(scope="session")
def path_graph() -> Graph:
    """A 5-node path graph (useful for exact hand-computed values)."""
    edges = [(0, 1), (1, 2), (2, 3), (3, 4)]
    features = np.eye(5)
    labels = np.array([0, 1, 0, 1, 0])
    return Graph.from_edges(5, edges, features=features, labels=labels, name="path5")
