"""Suite for the unified LocalPush engine core and its pluggable executors.

Pins the tentpole properties of the ``(engine, executor)`` refactor:

* every executor (``serial``/``thread``/``process``) and worker count
  produces a **bit-identical** matrix, streamed top-k included,
* :func:`repro.simrank.localpush.resolve_execution` maps the legacy
  ``backend=`` ladder onto executor plans and rejects nonsense plans,
* the deprecated shims ``localpush_simrank_vectorized`` /
  ``localpush_simrank_sharded`` emit a :class:`DeprecationWarning` but
  return results bit-identical to the unified core, and
* the operator pipeline accepts ``executor=`` and serves the same
  operator regardless of it.
"""

import numpy as np
import pytest
import scipy.sparse as sp

from _simrank_fixtures import (
    disconnected as _disconnected,
    erdos_renyi as _erdos_renyi,
    sbm as _sbm,
    star as _star,
    weighted as _weighted,
)
from repro.errors import SimRankError
from repro.simrank.engine import EXECUTORS, localpush_engine
from repro.simrank.localpush import (
    AUTO_BACKEND_MIN_NODES,
    AUTO_SHARDED_MIN_NODES,
    localpush_simrank,
    resolve_execution,
)


def _assert_identical(a: sp.csr_matrix, b: sp.csr_matrix) -> None:
    assert np.array_equal(a.indptr, b.indptr)
    assert np.array_equal(a.indices, b.indices)
    assert np.array_equal(a.data, b.data)  # bitwise, no tolerance


EQUIVALENCE_GRAPHS = [
    pytest.param(lambda: _erdos_renyi(60, 0.08, seed=0), id="erdos-renyi-60"),
    pytest.param(lambda: _sbm(150, seed=2), id="sbm-150"),
    pytest.param(lambda: _weighted(40, seed=12), id="weighted-40"),
    pytest.param(_disconnected, id="disconnected"),
    pytest.param(lambda: _star(12), id="star-12"),
]


class TestExecutorEquivalence:
    """Bit-identical output across executors — pinned, not approximate."""

    @pytest.mark.parametrize("make_graph", EQUIVALENCE_GRAPHS)
    def test_all_executors_identical_on_equivalence_suite(self, make_graph):
        graph = make_graph()
        kwargs = dict(epsilon=0.1, prune=False, absorb_residual=True,
                      num_shards=3)
        results = {
            executor: localpush_engine(graph, executor=executor,
                                       num_workers=2 if executor != "serial"
                                       else None, **kwargs)
            for executor in EXECUTORS
        }
        for executor in ("thread", "process"):
            _assert_identical(results["serial"].matrix,
                              results[executor].matrix)

    @pytest.mark.parametrize("executor", ["thread", "process"])
    def test_pooled_executors_match_serial(self, executor):
        graph = _sbm(200, seed=5)
        # num_shards forces multi-shard rounds so the pools actually engage.
        serial = localpush_engine(graph, epsilon=0.05, prune=False,
                                  executor="serial", num_shards=6)
        pooled = localpush_engine(graph, epsilon=0.05, prune=False,
                                  executor=executor, num_workers=2,
                                  num_shards=6)
        _assert_identical(serial.matrix, pooled.matrix)
        assert serial.num_pushes == pooled.num_pushes
        assert serial.num_rounds == pooled.num_rounds

    @pytest.mark.parametrize("workers", [1, 3])
    def test_process_worker_count_does_not_change_the_matrix(self, workers):
        graph = _sbm(150, seed=6)
        reference = localpush_engine(graph, epsilon=0.1, prune=False,
                                     executor="process", num_workers=2,
                                     num_shards=4)
        other = localpush_engine(graph, epsilon=0.1, prune=False,
                                 executor="process", num_workers=workers,
                                 num_shards=4)
        _assert_identical(reference.matrix, other.matrix)

    def test_streamed_topk_identical_across_executors(self):
        graph = _sbm(200, seed=7)
        kwargs = dict(epsilon=0.1, prune=False, absorb_residual=True,
                      stream_top_k=6, num_shards=5)
        serial = localpush_engine(graph, executor="serial", **kwargs)
        process = localpush_engine(graph, executor="process", num_workers=2,
                                   **kwargs)
        _assert_identical(serial.matrix, process.matrix)
        assert np.diff(process.matrix.indptr).max() <= 6
        assert (process.matrix.diagonal() > 0).all()

    def test_matches_dict_oracle_within_epsilon(self):
        graph = _erdos_renyi(80, 0.07, seed=8)
        oracle = localpush_simrank(graph, epsilon=0.05, prune=False,
                                   backend="dict")
        core = localpush_engine(graph, epsilon=0.05, prune=False,
                                executor="process", num_workers=2,
                                num_shards=3)
        diff = np.abs((oracle.matrix - core.matrix).toarray()).max()
        assert diff < 0.05

    def test_result_metadata(self):
        graph = _sbm(150, seed=9)
        result = localpush_engine(graph, epsilon=0.1, executor="process",
                                  num_workers=2, num_shards=3)
        assert result.executor == "process"
        assert result.backend == "sharded"
        assert result.num_workers == 2
        assert result.num_shards == 3
        assert result.num_rounds is not None and result.num_rounds > 0

    def test_invalid_executor_rejected(self, tiny_graph):
        with pytest.raises(SimRankError):
            localpush_engine(tiny_graph, epsilon=0.1, executor="gpu")


class TestResolveExecution:
    """The legacy backend ladder re-expressed as (engine, executor) plans."""

    def test_ladder_with_default_executor(self):
        assert resolve_execution("auto", None, AUTO_BACKEND_MIN_NODES - 1) == \
            ("dict", None)
        assert resolve_execution("auto", None, AUTO_BACKEND_MIN_NODES) == \
            ("vectorized", "serial")
        assert resolve_execution("auto", None, AUTO_SHARDED_MIN_NODES) == \
            ("sharded", "thread")

    def test_legacy_backend_names_map_to_executors(self):
        assert resolve_execution("vectorized", None, 10) == \
            ("vectorized", "serial")
        assert resolve_execution("sharded", None, 10) == ("sharded", "thread")
        assert resolve_execution("dict", None, 10**6) == ("dict", None)

    def test_explicit_executor_forces_the_core(self):
        # Even below the dict threshold, naming an executor selects the core.
        assert resolve_execution("auto", "process", 10) == \
            ("vectorized", "process")
        assert resolve_execution("auto", "serial", 10) == \
            ("vectorized", "serial")
        # An explicit backend keeps its label for cache keys / provenance.
        assert resolve_execution("vectorized", "process", 10) == \
            ("vectorized", "process")

    def test_backend_label_is_executor_independent(self):
        """The cache key includes the label, so it must not move with the
        executor: same request + size → same label for every executor."""
        for num_nodes in (10, 500, 5000):
            labels = {resolve_execution("auto", executor, num_nodes)[0]
                      for executor in ("serial", "thread", "process")}
            assert len(labels) == 1
        assert resolve_execution("auto", "serial", 5000) == \
            ("sharded", "serial")

    def test_auto_executor_is_the_default(self):
        assert resolve_execution("sharded", "auto", 10) == \
            resolve_execution("sharded", None, 10)

    def test_dict_with_executor_is_an_error(self):
        with pytest.raises(SimRankError):
            resolve_execution("dict", "process", 100)

    def test_unknown_names_rejected(self):
        with pytest.raises(SimRankError):
            resolve_execution("gpu", None, 100)
        with pytest.raises(SimRankError):
            resolve_execution("auto", "fpga", 100)

    def test_localpush_simrank_accepts_executor(self):
        graph = _sbm(150, seed=10)
        result = localpush_simrank(graph, epsilon=0.1, executor="process",
                                   num_workers=2)
        assert result.executor == "process"
        serial = localpush_simrank(graph, epsilon=0.1, backend="vectorized")
        assert serial.executor == "serial"
        _assert_identical(result.matrix, serial.matrix)

    def test_localpush_simrank_rejects_dict_with_executor(self, tiny_graph):
        with pytest.raises(SimRankError):
            localpush_simrank(tiny_graph, epsilon=0.1, backend="dict",
                              executor="thread")


class TestDeprecatedShims:
    """Direct engine calls still work: warn, but return core-identical bits."""

    def test_vectorized_shim_warns_and_matches_core(self):
        from repro.simrank.localpush_vec import localpush_simrank_vectorized

        graph = _sbm(150, seed=11)
        with pytest.warns(DeprecationWarning):
            shimmed = localpush_simrank_vectorized(graph, epsilon=0.1,
                                                   prune=False)
        core = localpush_engine(graph, epsilon=0.1, prune=False,
                                executor="serial")
        _assert_identical(shimmed.matrix, core.matrix)
        assert shimmed.backend == "vectorized"
        assert shimmed.executor == "serial"
        assert shimmed.num_pushes == core.num_pushes

    def test_sharded_shim_warns_and_matches_core(self):
        from repro.simrank.sharded import localpush_simrank_sharded

        graph = _sbm(150, seed=12)
        with pytest.warns(DeprecationWarning):
            shimmed = localpush_simrank_sharded(graph, epsilon=0.1,
                                                prune=False, num_workers=2,
                                                num_shards=4,
                                                stream_top_k=5,
                                                absorb_residual=True)
        core = localpush_engine(graph, epsilon=0.1, prune=False,
                                executor="thread", num_workers=2,
                                num_shards=4, stream_top_k=5,
                                absorb_residual=True)
        _assert_identical(shimmed.matrix, core.matrix)
        assert shimmed.backend == "sharded"
        assert shimmed.executor == "thread"

    def test_shims_match_the_dispatcher(self):
        """backend= names route through the same core as the shims."""
        from repro.simrank.localpush_vec import localpush_simrank_vectorized

        graph = _sbm(150, seed=13)
        with pytest.warns(DeprecationWarning):
            shimmed = localpush_simrank_vectorized(graph, epsilon=0.1)
        dispatched = localpush_simrank(graph, epsilon=0.1,
                                       backend="vectorized")
        _assert_identical(shimmed.matrix, dispatched.matrix)


class TestOperatorPipelineExecutors:
    def test_operator_identical_across_executors(self):
        from repro.simrank.topk import simrank_operator

        from repro.config import SimRankConfig

        graph = _sbm(150, seed=14)
        serial = simrank_operator(graph, config=SimRankConfig(
            method="localpush", epsilon=0.1, top_k=4, executor="serial"))
        process = simrank_operator(graph, config=SimRankConfig(
            method="localpush", epsilon=0.1, top_k=4, executor="process",
            workers=2))
        _assert_identical(serial.matrix, process.matrix)
        assert np.diff(process.matrix.indptr).max() <= 4


@pytest.mark.slow
class TestEngineStress:
    """Large-graph executor equivalence; excluded from the fast default."""

    def test_large_graph_executors_bit_identical(self):
        graph = _sbm(2000, seed=20)
        serial = localpush_engine(graph, epsilon=0.1, prune=False,
                                  executor="serial")
        thread = localpush_engine(graph, epsilon=0.1, prune=False,
                                  executor="thread", num_workers=4)
        process = localpush_engine(graph, epsilon=0.1, prune=False,
                                   executor="process", num_workers=4)
        _assert_identical(serial.matrix, thread.matrix)
        _assert_identical(serial.matrix, process.matrix)
        assert serial.num_shards >= 2  # the frontier actually sharded
