"""Tests for the training CLI (a thin shell over RunSpec + repro.api)."""

import json

import pytest

from repro.cli import build_parser, build_runspec, main
from repro.config import RunSpec, SimRankConfig
from repro.training.config import TrainConfig


class TestParser:
    def test_defaults(self):
        args = build_parser().parse_args([])
        assert args.model == "sigma"
        assert args.dataset == "texas"

    def test_training_defaults_sourced_from_trainconfig(self):
        """The numbers live once, on TrainConfig — the parser inherits."""
        args = build_parser().parse_args([])
        reference = TrainConfig()
        assert args.lr == reference.learning_rate
        assert args.weight_decay == reference.weight_decay
        assert args.epochs == reference.max_epochs
        assert args.patience == reference.patience

    def test_rejects_unknown_model(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["--model", "transformer"])

    def test_overrides_parsed(self):
        args = build_parser().parse_args(
            ["--model", "glognn", "--delta", "0.3", "--top-k", "16"])
        assert args.model == "glognn"
        assert args.delta == 0.3
        assert args.top_k == 16


class TestBuildRunSpec:
    def test_sigma_flags_fold_into_one_config(self, tmp_path):
        args = build_parser().parse_args([
            "--model", "sigma", "--dataset", "chameleon", "--repeats", "2",
            "--epsilon", "0.05", "--top-k", "16",
            "--simrank-executor", "thread",
            "--simrank-cache-dir", str(tmp_path)])
        spec = build_runspec(args)
        assert isinstance(spec, RunSpec)
        assert spec.model == "sigma" and spec.dataset == "chameleon"
        assert spec.repeats == 2
        assert spec.simrank == SimRankConfig(
            epsilon=0.05, top_k=16, executor="thread",
            cache_dir=str(tmp_path))
        assert "top_k" not in spec.overrides

    def test_sigma_defaults_are_the_paper_settings(self):
        spec = build_runspec(build_parser().parse_args([]))
        assert spec.simrank.top_k == 32 and spec.simrank.epsilon == 0.1

    def test_baseline_keeps_top_k_as_model_override(self):
        args = build_parser().parse_args(
            ["--model", "pprgo", "--top-k", "16", "--hidden", "32"])
        spec = build_runspec(args)
        assert spec.simrank is None
        assert spec.overrides == {"hidden": 32, "top_k": 16}

    def test_train_config_carries_cli_values(self):
        args = build_parser().parse_args(["--lr", "0.1", "--patience", "7"])
        spec = build_runspec(args)
        assert spec.train.learning_rate == 0.1
        assert spec.train.patience == 7


class TestExperimentSubcommand:
    def test_list(self, capsys):
        assert main(["experiment", "--list"]) == 0
        output = capsys.readouterr().out
        assert "available experiments" in output
        assert "fig6" in output and "table5" in output

    def test_describe(self, capsys):
        assert main(["experiment", "table3", "--describe"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["spec"]["name"] == "table3"
        assert payload["cells"] == 1

    def test_unknown_experiment_exits_with_message(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["experiment", "nope"])
        assert excinfo.value.code == 2
        assert "unknown experiment" in capsys.readouterr().err

    def test_runs_experiment_end_to_end(self, capsys):
        assert main(["experiment", "table3", "--scale-factor", "0.25"]) == 0
        output = capsys.readouterr().out
        assert "== table3 ==" in output
        assert "SIGMA" in output


class TestMain:
    def test_runs_end_to_end(self, capsys):
        exit_code = main(["--model", "mlp", "--dataset", "texas", "--repeats", "1",
                          "--epochs", "15", "--patience", "10", "--hidden", "16"])
        assert exit_code == 0
        output = capsys.readouterr().out
        assert "accuracy" in output

    def test_json_output(self, capsys):
        exit_code = main(["--model", "sigma", "--dataset", "texas", "--repeats", "1",
                          "--epochs", "10", "--patience", "5", "--hidden", "16",
                          "--top-k", "8", "--json"])
        assert exit_code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["model"] == "sigma"
        assert 0.0 <= payload["accuracy_mean"] <= 100.0
