"""Tests for the training CLI."""

import json

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_defaults(self):
        args = build_parser().parse_args([])
        assert args.model == "sigma"
        assert args.dataset == "texas"

    def test_rejects_unknown_model(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["--model", "transformer"])

    def test_overrides_parsed(self):
        args = build_parser().parse_args(
            ["--model", "glognn", "--delta", "0.3", "--top-k", "16"])
        assert args.model == "glognn"
        assert args.delta == 0.3
        assert args.top_k == 16


class TestMain:
    def test_runs_end_to_end(self, capsys):
        exit_code = main(["--model", "mlp", "--dataset", "texas", "--repeats", "1",
                          "--epochs", "15", "--patience", "10", "--hidden", "16"])
        assert exit_code == 0
        output = capsys.readouterr().out
        assert "accuracy" in output

    def test_json_output(self, capsys):
        exit_code = main(["--model", "sigma", "--dataset", "texas", "--repeats", "1",
                          "--epochs", "10", "--patience", "5", "--hidden", "16",
                          "--top-k", "8", "--json"])
        assert exit_code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["model"] == "sigma"
        assert 0.0 <= payload["accuracy_mean"] <= 100.0
