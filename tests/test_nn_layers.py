"""Tests for the numpy neural-network layers (forward behaviour)."""

import numpy as np
import pytest
import scipy.sparse as sp

from repro.nn import (
    GELU,
    MLP,
    BatchNorm1d,
    Dropout,
    LayerNorm,
    LeakyReLU,
    Linear,
    ReLU,
    Sequential,
    Tanh,
)


class TestLinear:
    def test_output_shape(self):
        layer = Linear(4, 3, rng=0)
        output = layer(np.ones((5, 4)))
        assert output.shape == (5, 3)

    def test_bias_disabled(self):
        layer = Linear(4, 3, bias=False, rng=0)
        assert layer.bias is None
        output = layer(np.zeros((2, 4)))
        np.testing.assert_allclose(output, 0.0)

    def test_sparse_input(self):
        layer = Linear(4, 2, rng=0)
        sparse = sp.csr_matrix(np.eye(4))
        dense = np.eye(4)
        np.testing.assert_allclose(layer(sparse), layer(dense))

    def test_sparse_input_backward_returns_none(self):
        layer = Linear(4, 2, rng=0)
        layer(sp.csr_matrix(np.eye(4)))
        assert layer.backward(np.ones((4, 2))) is None

    def test_wrong_input_dim_raises(self):
        layer = Linear(4, 2, rng=0)
        with pytest.raises(ValueError):
            layer(np.ones((3, 5)))

    def test_backward_before_forward_raises(self):
        layer = Linear(4, 2, rng=0)
        with pytest.raises(RuntimeError):
            layer.backward(np.ones((3, 2)))

    def test_parameter_count(self):
        layer = Linear(4, 3, rng=0)
        assert layer.num_parameters() == 4 * 3 + 3


class TestActivations:
    def test_relu_forward(self):
        layer = ReLU()
        np.testing.assert_allclose(layer(np.array([[-1.0, 2.0]])), [[0.0, 2.0]])

    def test_leaky_relu_forward(self):
        layer = LeakyReLU(0.1)
        np.testing.assert_allclose(layer(np.array([[-1.0, 2.0]])), [[-0.1, 2.0]])

    def test_tanh_range(self):
        layer = Tanh()
        output = layer(np.linspace(-5, 5, 11).reshape(1, -1))
        assert (np.abs(output) < 1.0).all()

    def test_gelu_positive_inputs_nearly_identity(self):
        layer = GELU()
        values = np.array([[5.0, 10.0]])
        np.testing.assert_allclose(layer(values), values, rtol=1e-3)

    def test_backward_before_forward_raises(self):
        for layer in (ReLU(), LeakyReLU(), Tanh(), GELU()):
            with pytest.raises(RuntimeError):
                layer.backward(np.ones((1, 1)))


class TestDropout:
    def test_eval_mode_is_identity(self):
        layer = Dropout(0.5, rng=0)
        layer.eval()
        values = np.random.default_rng(0).random((10, 10))
        np.testing.assert_allclose(layer(values), values)

    def test_train_mode_zeroes_entries(self):
        layer = Dropout(0.5, rng=0)
        output = layer(np.ones((100, 100)))
        zero_fraction = np.mean(output == 0.0)
        assert 0.4 < zero_fraction < 0.6

    def test_scaling_preserves_expectation(self):
        layer = Dropout(0.3, rng=1)
        output = layer(np.ones((200, 200)))
        assert output.mean() == pytest.approx(1.0, abs=0.05)

    def test_invalid_probability(self):
        with pytest.raises(ValueError):
            Dropout(1.0)

    def test_zero_probability_is_identity(self):
        layer = Dropout(0.0)
        values = np.ones((3, 3))
        np.testing.assert_allclose(layer(values), values)


class TestNormalization:
    def test_layernorm_zero_mean_unit_variance(self):
        layer = LayerNorm(8)
        values = np.random.default_rng(0).random((5, 8)) * 10
        output = layer(values)
        np.testing.assert_allclose(output.mean(axis=1), 0.0, atol=1e-7)
        np.testing.assert_allclose(output.std(axis=1), 1.0, atol=1e-3)

    def test_batchnorm_training_statistics(self):
        layer = BatchNorm1d(4)
        values = np.random.default_rng(0).random((50, 4)) * 3 + 2
        output = layer(values)
        np.testing.assert_allclose(output.mean(axis=0), 0.0, atol=1e-7)

    def test_batchnorm_eval_uses_running_statistics(self):
        layer = BatchNorm1d(4, momentum=1.0)
        train_values = np.random.default_rng(0).random((50, 4))
        layer(train_values)
        layer.eval()
        eval_output = layer(train_values)
        np.testing.assert_allclose(eval_output.mean(axis=0), 0.0, atol=1e-6)


class TestSequentialAndMLP:
    def test_sequential_runs_in_order(self):
        model = Sequential(Linear(4, 8, rng=0), ReLU(), Linear(8, 2, rng=1))
        output = model(np.ones((3, 4)))
        assert output.shape == (3, 2)

    def test_sequential_indexing(self):
        model = Sequential(Linear(4, 8, rng=0), ReLU())
        assert len(model) == 2
        assert isinstance(model[1], ReLU)

    def test_mlp_single_layer_is_linear(self):
        mlp = MLP(4, 16, 2, num_layers=1, rng=0)
        assert mlp.num_parameters() == 4 * 2 + 2

    def test_mlp_depth(self):
        mlp = MLP(4, 16, 2, num_layers=3, rng=0)
        linear_count = sum(1 for module in mlp.body if isinstance(module, Linear))
        assert linear_count == 3

    def test_mlp_invalid_layers(self):
        with pytest.raises(ValueError):
            MLP(4, 8, 2, num_layers=0)

    def test_mlp_train_eval_propagates(self):
        mlp = MLP(4, 8, 2, num_layers=2, dropout=0.5, rng=0)
        mlp.eval()
        assert all(not module.training for module in mlp.body)
