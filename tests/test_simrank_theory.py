"""Tests validating the paper's theoretical claims (Theorem III.2, Corollary III.3)."""

import numpy as np
import pytest

from repro.errors import SimRankError
from repro.simrank.exact import linearized_simrank
from repro.simrank.pairwise_walk import (
    homophily_probability,
    pairwise_meeting_probability,
    pairwise_walk_series,
    simulate_tour_homophily,
    walk_distribution,
)


class TestWalkDistribution:
    def test_is_probability_distribution(self, tiny_graph):
        dist = walk_distribution(tiny_graph, 0, 3)
        assert dist.min() >= 0.0
        assert dist.sum() == pytest.approx(1.0)

    def test_zero_steps_is_point_mass(self, tiny_graph):
        dist = walk_distribution(tiny_graph, 2, 0)
        assert dist[2] == pytest.approx(1.0)
        assert dist.sum() == pytest.approx(1.0)

    def test_negative_length_raises(self, tiny_graph):
        with pytest.raises(SimRankError):
            walk_distribution(tiny_graph, 0, -1)


class TestPairwiseMeetingProbability:
    def test_symmetric_in_endpoints(self, tiny_graph):
        forward = pairwise_meeting_probability(tiny_graph, 0, 4, 3)
        backward = pairwise_meeting_probability(tiny_graph, 4, 0, 3)
        assert forward == pytest.approx(backward)

    def test_bounded_by_one(self, tiny_graph):
        for length in range(1, 5):
            value = pairwise_meeting_probability(tiny_graph, 0, 5, length)
            assert 0.0 <= value <= 1.0

    def test_adjacent_same_degree_nodes_meet(self, path_graph):
        # Nodes 1 and 3 of a path share node 2 as a neighbour: one-step walks
        # meet there with probability (1/2) * (1/2).
        value = pairwise_meeting_probability(path_graph, 1, 3, 1)
        assert value == pytest.approx(0.25)


class TestTheoremIII2:
    def test_series_equals_linearized_simrank(self, tiny_graph):
        """Theorem III.2: S'(u, v) = Σ_ℓ c^ℓ ↔P(u, v | t^{2ℓ})."""
        matrix = linearized_simrank(tiny_graph, decay=0.6, num_iterations=15)
        for u, v in [(0, 1), (0, 3), (2, 5), (4, 4)]:
            series = pairwise_walk_series(tiny_graph, u, v, decay=0.6, max_length=15)
            assert matrix[u, v] == pytest.approx(series, abs=1e-6)

    def test_global_reach_beyond_neighbourhood(self, path_graph):
        """The aggregation assigns non-zero weight to distant same-parity nodes."""
        matrix = linearized_simrank(path_graph, num_iterations=20, include_self=False)
        # Nodes 0 and 4 are four hops apart yet structurally similar.
        assert matrix[0, 4] > 0.0


class TestCorollaryIII3:
    def test_closed_form_matches_simulation(self):
        for p in (0.6, 0.75, 0.9):
            for length in (1, 2, 3):
                closed = homophily_probability(p, length)
                simulated = simulate_tour_homophily(p, length, num_samples=40000, seed=1)
                assert closed == pytest.approx(simulated, abs=0.02)

    def test_increases_with_heterophily_extent(self):
        """For p > 0.5, H_p^ℓ grows as p grows (the paper's key implication)."""
        for length in (1, 2, 4):
            values = [homophily_probability(p, length) for p in (0.55, 0.7, 0.85, 0.99)]
            assert all(later >= earlier for earlier, later in zip(values, values[1:]))

    def test_length_zero_is_certain(self):
        assert homophily_probability(0.7, 0) == pytest.approx(1.0)

    def test_p_half_is_least_informative(self):
        assert homophily_probability(0.5, 3) == pytest.approx(0.5**3)

    def test_invalid_arguments(self):
        with pytest.raises(SimRankError):
            homophily_probability(1.5, 2)
        with pytest.raises(SimRankError):
            homophily_probability(0.5, -1)
