"""Tests for the personalized PageRank substrate."""

import numpy as np
import pytest

from repro.errors import GraphError
from repro.ppr.matrix import ppr_operator, topk_ppr_matrix
from repro.ppr.power import ppr_matrix_power, ppr_vector_power
from repro.ppr.push import forward_push_ppr


class TestPowerIteration:
    def test_vector_sums_to_one(self, tiny_graph):
        scores = ppr_vector_power(tiny_graph, 0, alpha=0.15)
        assert scores.sum() == pytest.approx(1.0, abs=1e-6)
        assert scores.min() >= 0.0

    def test_source_has_largest_score_for_high_alpha(self, tiny_graph):
        scores = ppr_vector_power(tiny_graph, 3, alpha=0.5)
        assert scores.argmax() == 3

    def test_matrix_rows_match_vectors(self, tiny_graph):
        matrix = ppr_matrix_power(tiny_graph, alpha=0.2)
        for source in (0, 3, 5):
            vector = ppr_vector_power(tiny_graph, source, alpha=0.2)
            np.testing.assert_allclose(matrix[source], vector, atol=1e-6)

    def test_locality(self, path_graph):
        """PPR mass decays with distance from the source (it is local)."""
        scores = ppr_vector_power(path_graph, 0, alpha=0.15)
        assert scores[1] > scores[3]
        assert scores[0] > scores[4]

    def test_invalid_alpha(self, tiny_graph):
        with pytest.raises(GraphError):
            ppr_vector_power(tiny_graph, 0, alpha=0.0)

    def test_invalid_source(self, tiny_graph):
        with pytest.raises(GraphError):
            ppr_vector_power(tiny_graph, 99)


class TestForwardPush:
    def test_approximates_power_iteration(self, tiny_graph):
        exact = ppr_vector_power(tiny_graph, 0, alpha=0.15)
        approx = forward_push_ppr(tiny_graph, 0, alpha=0.15, epsilon=1e-6)
        dense = np.zeros(tiny_graph.num_nodes)
        for node, value in approx.items():
            dense[node] = value
        # Forward push under-estimates by at most the un-pushed residual mass.
        assert np.abs(dense - exact).max() < 1e-3

    def test_sparser_with_larger_epsilon(self, small_heterophilous_graph):
        fine = forward_push_ppr(small_heterophilous_graph, 0, epsilon=1e-6)
        coarse = forward_push_ppr(small_heterophilous_graph, 0, epsilon=1e-2)
        assert len(coarse) <= len(fine)

    def test_invalid_epsilon(self, tiny_graph):
        with pytest.raises(GraphError):
            forward_push_ppr(tiny_graph, 0, epsilon=0.0)


class TestPPRMatrix:
    def test_topk_limits_row_entries(self, small_heterophilous_graph):
        matrix = topk_ppr_matrix(small_heterophilous_graph, top_k=8, epsilon=1e-3)
        row_counts = np.diff(matrix.indptr)
        assert (row_counts <= 9).all()

    def test_operator_dense_path(self, tiny_graph):
        operator = ppr_operator(tiny_graph, top_k=4)
        assert operator.epsilon is None
        assert operator.matrix.shape == (6, 6)

    def test_operator_push_path(self, small_heterophilous_graph):
        operator = ppr_operator(small_heterophilous_graph, top_k=8, dense_size_limit=10)
        assert operator.epsilon is not None
        assert operator.matrix.shape[0] == small_heterophilous_graph.num_nodes

    def test_operator_records_time(self, tiny_graph):
        operator = ppr_operator(tiny_graph)
        assert operator.precompute_seconds >= 0.0
