"""Smoke tests for the experiment harness (reduced scale).

Each experiment module is exercised end-to-end with tiny datasets / short
training so the full paper-scale runs (via ``repro-experiment``) are known
to be wired correctly.
"""

import pytest

from repro.config import SimRankConfig
from repro.errors import ExperimentError
from repro.experiments import common
from repro.experiments import (
    fig1_aggregation_maps,
    fig2_score_densities,
    fig5_scalability,
    fig8_grouping,
    table2_simrank_stats,
    table3_complexity,
    table5_accuracy,
    table7_learning_time,
    table9_delta,
    table10_alpha,
    table11_iterative,
)
from repro.experiments.runner import EXPERIMENTS, run_experiment
from repro.training.config import TrainConfig

SMOKE_CONFIG = TrainConfig(max_epochs=15, patience=10, min_epochs=2,
                           track_test_history=False)


class TestCommonUtilities:
    def test_format_table_renders_columns(self):
        text = common.format_table([{"a": 1, "b": 2.5}, {"a": 3, "b": 4.0}])
        assert "a" in text and "b" in text
        assert "2.50" in text

    def test_format_table_empty(self):
        assert common.format_table([]) == "(no rows)"

    def test_mean_and_std(self):
        mean, std = common.mean_and_std([1.0, 3.0])
        assert mean == pytest.approx(2.0)
        assert std == pytest.approx(1.0)

    def test_tune_hyperparameters_returns_grid_entry(self, small_dataset):
        chosen = common.tune_hyperparameters(
            "sigma", small_dataset, grid=[{"delta": 0.3}, {"delta": 0.7}],
            config=SMOKE_CONFIG, base_overrides={"simrank": SimRankConfig(top_k=8),
                            "hidden": 16})
        assert chosen["delta"] in (0.3, 0.7)
        assert chosen["simrank"].top_k == 8

    def test_tune_single_candidate_short_circuits(self, small_dataset):
        chosen = common.tune_hyperparameters("linkx", small_dataset)
        assert chosen == {}


class TestAnalyticalExperiments:
    def test_table2(self):
        result = table2_simrank_stats.run(datasets=("texas",), num_pairs=2000)
        assert "texas" in result.stats
        assert result.stats["texas"].num_intra_pairs > 0

    def test_fig2(self):
        result = fig2_score_densities.run(datasets=("texas",), bins=10)
        assert "texas" in result.histograms

    def test_fig1(self):
        result = fig1_aggregation_maps.run("texas", num_centers=5)
        assert result.mean_same_label_mass("simrank") > 0.0
        assert len(result.rows()) > 0

    def test_table3(self):
        # Use a large-regime graph: SIGMA's O(k n f) only wins once k·n ≪ m.
        result = table3_complexity.run("pokec", scale_factor=0.25)
        assert result.cheapest_model() == "SIGMA"
        assert len(result.entries) == 6


class TestTrainingExperiments:
    def test_table5_reduced(self):
        result = table5_accuracy.run(
            datasets=("texas",), models=("mlp", "sigma"), num_repeats=1,
            config=SMOKE_CONFIG, tune=False)
        ranks = result.ranks()
        assert set(ranks) == {"mlp", "sigma"}
        assert len(result.rows()) == 2

    def test_table7_reduced(self):
        result = table7_learning_time.run(
            datasets=("genius",), models=("linkx", "sigma"), num_repeats=1,
            scale_factor=0.2, config=SMOKE_CONFIG)
        assert len(result.rows()) == 2
        assert result.average_speedup_over("linkx") > 0.0

    def test_table9_reduced(self):
        result = table9_delta.run(datasets=("penn94",), deltas=(0.3, 0.7),
                                  num_repeats=1, scale_factor=0.2, config=SMOKE_CONFIG)
        assert result.best_delta("penn94") in (0.3, 0.7)

    def test_table10_reduced(self):
        result = table10_alpha.run(datasets=("genius",), num_repeats=1,
                                   scale_factor=0.2, config=SMOKE_CONFIG)
        assert 0.0 < result.alphas["genius"] < 1.0

    def test_table11_reduced(self):
        result = table11_iterative.run(datasets=("genius",), layers=(1,),
                                       num_repeats=1, scale_factor=0.2,
                                       config=SMOKE_CONFIG)
        assert "sigma-1" in result.accuracies and "gcn-1" in result.accuracies

    def test_fig5_reduced(self):
        result = fig5_scalability.run(num_sizes=2, base_scale=0.1,
                                      config=SMOKE_CONFIG)
        assert len(result.points) == 4

    def test_fig8_reduced(self):
        result = fig8_grouping.run(datasets=("texas",), config=SMOKE_CONFIG,
                                   num_pairs=2000)
        assert len(result.stats) == 1


class TestRunner:
    def test_all_fourteen_plus_experiments_registered(self):
        assert len(EXPERIMENTS) == 15

    def test_unknown_experiment_raises(self):
        with pytest.raises(ExperimentError):
            run_experiment("table99", print_result=False)

    def test_runner_dispatch(self, capsys):
        result = run_experiment("table3", print_result=True)
        assert result.cheapest_model() == "SIGMA"
        captured = capsys.readouterr()
        assert "table3" in captured.out
