"""Tests for the declarative experiment harness.

Covers the registry + sweep engine end to end at reduced scale, the
legacy ``module.run()`` deprecation shims (row-identical results, one
warning per call), the resumable store wiring, the runner CLI, and the
``common.py`` training-config derivation.
"""

import json
import warnings

import pytest

from repro.config import ExperimentSpec, SimRankConfig
from repro.errors import ExperimentError
from repro.experiments import (
    build_spec,
    common,
    execute,
    get_artifact_store,
    get_experiment,
    list_experiments,
    run_experiment,
)
from repro.experiments import (
    fig1_aggregation_maps,
    fig2_score_densities,
    fig4_convergence,
    fig5_scalability,
    fig6_epsilon_topk,
    fig7_topk_tradeoff,
    fig8_grouping,
    table2_simrank_stats,
    table3_complexity,
    table5_accuracy,
    table7_learning_time,
    table8_ablation,
    table9_delta,
    table10_alpha,
    table11_iterative,
)
from repro.experiments.registry import EXPERIMENT_MODULES
from repro.experiments.runner import EXPERIMENTS, main as runner_main
from repro.training.config import TrainConfig

SMOKE_CONFIG = TrainConfig(max_epochs=15, patience=10, min_epochs=2,
                           track_test_history=False)

#: Even smaller protocol for the 15-way legacy-equivalence sweep.
TINY_CONFIG = TrainConfig(max_epochs=8, patience=5, min_epochs=2,
                          track_test_history=False)

#: Wall-clock row fields — reproducible runs produce identical rows except
#: for these.
TIMING_KEYS = {"precompute", "learn", "runtime", "aggregation", "pre", "agg",
               "time_to_95pct", "total_time"}

LEGACY_MODULES = {
    "fig1": fig1_aggregation_maps,
    "table2": table2_simrank_stats,
    "fig2": fig2_score_densities,
    "table3": table3_complexity,
    "table5": table5_accuracy,
    "table7": table7_learning_time,
    "fig4": fig4_convergence,
    "fig5": fig5_scalability,
    "fig6": fig6_epsilon_topk,
    "fig7": fig7_topk_tradeoff,
    "table8": table8_ablation,
    "table9": table9_delta,
    "table10": table10_alpha,
    "fig8": fig8_grouping,
    "table11": table11_iterative,
}

#: Reduced-scale arguments used for the per-experiment equivalence pins.
EQUIVALENCE_KWARGS = {
    "fig1": dict(dataset_name="texas", num_centers=4),
    "table2": dict(datasets=("texas",), num_pairs=1000),
    "fig2": dict(datasets=("texas",), bins=10),
    "table3": dict(dataset_name="pokec", scale_factor=0.25),
    "table5": dict(datasets=("texas",), models=("mlp", "sigma"),
                   num_repeats=1, config=TINY_CONFIG, tune=False),
    "table7": dict(datasets=("genius",), models=("linkx", "sigma"),
                   num_repeats=1, scale_factor=0.2, config=TINY_CONFIG),
    "fig4": dict(datasets=("genius",), models=("sigma",), scale_factor=0.2,
                 config=TINY_CONFIG),
    "fig5": dict(num_sizes=1, base_scale=0.05, config=TINY_CONFIG),
    "fig6": dict(dataset_name="texas", epsilons=(0.1,), top_ks=(8,),
                 num_repeats=1, config=TINY_CONFIG),
    "fig7": dict(dataset_name="texas", top_ks=(8,), num_repeats=1,
                 config=TINY_CONFIG),
    "table8": dict(datasets=("texas",), num_repeats=1, config=TINY_CONFIG),
    "table9": dict(datasets=("texas",), deltas=(0.5,), num_repeats=1,
                   config=TINY_CONFIG),
    "table10": dict(datasets=("genius",), num_repeats=1, scale_factor=0.2,
                    config=TINY_CONFIG),
    "fig8": dict(datasets=("texas",), config=TINY_CONFIG, num_pairs=1000),
    "table11": dict(datasets=("texas",), layers=(1,), num_repeats=1,
                    config=TINY_CONFIG),
}


def deterministic_rows(result):
    """``result.rows()`` with the wall-clock fields stripped."""
    return [{key: value for key, value in row.items()
             if key not in TIMING_KEYS} for row in result.rows()]


class TestCommonUtilities:
    def test_format_table_renders_columns(self):
        text = common.format_table([{"a": 1, "b": 2.5}, {"a": 3, "b": 4.0}])
        assert "a" in text and "b" in text
        assert "2.50" in text

    def test_format_table_empty(self):
        assert common.format_table([]) == "(no rows)"

    def test_mean_and_std(self):
        mean, std = common.mean_and_std([1.0, 3.0])
        assert mean == pytest.approx(2.0)
        assert std == pytest.approx(1.0)

    def test_tune_hyperparameters_returns_grid_entry(self, small_dataset):
        chosen = common.tune_hyperparameters(
            "sigma", small_dataset, grid=[{"delta": 0.3}, {"delta": 0.7}],
            config=SMOKE_CONFIG, base_overrides={"simrank": SimRankConfig(top_k=8),
                            "hidden": 16})
        assert chosen["delta"] in (0.3, 0.7)
        assert chosen["simrank"].top_k == 8

    def test_tune_single_candidate_short_circuits(self, small_dataset):
        chosen = common.tune_hyperparameters("linkx", small_dataset)
        assert chosen == {}

    def test_experiment_config_derived_from_trainconfig(self):
        """The shared numbers live once on TrainConfig; only the pinned
        paper-protocol divergences differ (weight decay, patience, and the
        history flag)."""
        base = TrainConfig()
        cfg = common.DEFAULT_EXPERIMENT_CONFIG
        diverged = {
            name for name in ("learning_rate", "weight_decay", "max_epochs",
                              "patience", "optimizer", "momentum",
                              "min_epochs", "track_test_history")
            if getattr(cfg, name) != getattr(base, name)
        }
        assert diverged == {"weight_decay", "patience", "track_test_history"}
        assert cfg.weight_decay == 1e-3
        assert cfg.patience == 60

    def test_quick_config_is_default_with_shorter_budget(self):
        assert common.QUICK_EXPERIMENT_CONFIG == (
            common.DEFAULT_EXPERIMENT_CONFIG.with_overrides(
                max_epochs=60, patience=25))


class TestAnalyticalExperiments:
    def test_table2(self):
        result = run_experiment("table2", datasets=("texas",), num_pairs=2000,
                                print_result=False)
        assert "texas" in result.stats
        assert result.stats["texas"].num_intra_pairs > 0

    def test_fig2(self):
        result = run_experiment("fig2", datasets=("texas",), bins=10,
                                print_result=False)
        assert "texas" in result.histograms

    def test_fig1(self):
        result = run_experiment("fig1", "texas", num_centers=5,
                                print_result=False)
        assert result.mean_same_label_mass("simrank") > 0.0
        assert len(result.rows()) > 0

    def test_table3(self):
        # Use a large-regime graph: SIGMA's O(k n f) only wins once k·n ≪ m.
        result = run_experiment("table3", "pokec", scale_factor=0.25,
                                print_result=False)
        assert result.cheapest_model() == "SIGMA"
        assert len(result.entries) == 6


class TestTrainingExperiments:
    def test_table5_reduced(self):
        result = run_experiment(
            "table5", datasets=("texas",), models=("mlp", "sigma"),
            num_repeats=1, config=SMOKE_CONFIG, tune=False, print_result=False)
        ranks = result.ranks()
        assert set(ranks) == {"mlp", "sigma"}
        assert len(result.rows()) == 2

    def test_table7_reduced(self):
        result = run_experiment(
            "table7", datasets=("genius",), models=("linkx", "sigma"),
            num_repeats=1, scale_factor=0.2, config=SMOKE_CONFIG,
            print_result=False)
        assert len(result.rows()) == 2
        assert result.average_speedup_over("linkx") > 0.0

    def test_table9_reduced(self):
        result = run_experiment("table9", datasets=("penn94",),
                                deltas=(0.3, 0.7), num_repeats=1,
                                scale_factor=0.2, config=SMOKE_CONFIG,
                                print_result=False)
        assert result.best_delta("penn94") in (0.3, 0.7)

    def test_table10_reduced(self):
        result = run_experiment("table10", datasets=("genius",), num_repeats=1,
                                scale_factor=0.2, config=SMOKE_CONFIG,
                                print_result=False)
        assert 0.0 < result.alphas["genius"] < 1.0

    def test_table11_reduced(self):
        result = run_experiment("table11", datasets=("genius",), layers=(1,),
                                num_repeats=1, scale_factor=0.2,
                                config=SMOKE_CONFIG, print_result=False)
        assert "sigma-1" in result.accuracies and "gcn-1" in result.accuracies

    def test_fig5_reduced(self):
        result = run_experiment("fig5", num_sizes=2, base_scale=0.1,
                                config=SMOKE_CONFIG, print_result=False)
        assert len(result.points) == 4

    def test_fig8_reduced(self):
        result = run_experiment("fig8", datasets=("texas",),
                                config=SMOKE_CONFIG, num_pairs=2000,
                                print_result=False)
        assert len(result.stats) == 1


class TestLegacyShimEquivalence:
    """Every experiment's ``run()`` shim: one warning, identical rows."""

    @pytest.mark.parametrize("name", sorted(LEGACY_MODULES))
    def test_shim_matches_registry(self, name):
        kwargs = EQUIVALENCE_KWARGS[name]
        declarative = run_experiment(name, print_result=False, **kwargs)
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            legacy = LEGACY_MODULES[name].run(**kwargs)
        deprecations = [w for w in caught
                        if issubclass(w.category, DeprecationWarning)]
        assert len(deprecations) == 1
        assert "deprecated" in str(deprecations[0].message)
        assert deterministic_rows(legacy) == deterministic_rows(declarative)

    def test_fig6_shim_accepts_pre_config_keywords(self, tmp_path):
        with pytest.warns(DeprecationWarning):
            result = fig6_epsilon_topk.run(
                "texas", epsilons=(0.1,), top_ks=(8,), num_repeats=1,
                config=TINY_CONFIG, simrank_backend="vectorized",
                simrank_cache_dir=str(tmp_path))
        assert len(result.cells) == 1
        # The cache directory was threaded through to the operator cache.
        assert any(tmp_path.glob("simrank-*.npz"))


class TestSweepEngine:
    def test_executors_produce_identical_rows(self):
        kwargs = dict(dataset_name="texas", epsilons=(0.1,), top_ks=(4, 8),
                      num_repeats=1, config=TINY_CONFIG, print_result=False)
        serial = run_experiment("fig6", **kwargs)
        threaded = run_experiment("fig6", executor="thread", workers=2, **kwargs)
        assert deterministic_rows(serial) == deterministic_rows(threaded)

    def test_process_executor_matches_serial(self):
        kwargs = dict(datasets=("texas", "chameleon"), num_pairs=500,
                      scale_factor=0.5, print_result=False)
        serial = run_experiment("table2", **kwargs)
        processed = run_experiment("table2", executor="process", workers=2,
                                   **kwargs)
        assert deterministic_rows(serial) == deterministic_rows(processed)

    def test_unknown_executor_rejected(self):
        with pytest.raises(ExperimentError):
            run_experiment("table3", "pokec", scale_factor=0.25,
                           executor="gpu", print_result=False)

    def test_resume_skips_completed_cells(self, tmp_path):
        """A killed 2-cell sweep re-invoked with resume executes only the
        unfinished cell (asserted via the store's hit counters)."""
        store = get_artifact_store(tmp_path / "store")
        kwargs = dict(dataset_name="texas", epsilons=(0.1,), top_ks=(4, 8),
                      num_repeats=1, config=TINY_CONFIG, print_result=False,
                      store=store)
        first = run_experiment("fig6", **kwargs)
        assert (store.hits, store.misses, store.stores) == (0, 2, 2)

        # Full resume: nothing recomputed, identical result rows.
        second = run_experiment("fig6", **kwargs)
        assert (store.hits, store.misses, store.stores) == (2, 2, 2)
        assert second.rows() == first.rows()

        # Kill one cell's record — only that cell re-executes.
        victim = sorted((tmp_path / "store").glob("cell-*.json"))[0]
        victim.unlink()
        third = run_experiment("fig6", **kwargs)
        assert store.hits == 3
        assert store.stores == 3
        assert deterministic_rows(third) == deterministic_rows(first)

    def test_killed_sweep_keeps_completed_cells(self, tmp_path):
        """Cells persist incrementally: a sweep dying mid-run keeps every
        finished cell on disk, and the re-run resumes from them."""
        from repro.experiments.registry import ExperimentDefinition
        from repro.experiments.table2_simrank_stats import (
            class_stats_cell, _reduce as reduce_table2, spec as table2_spec)

        state = {"fail": True}

        def flaky_runner(cell):
            if cell.spec.dataset == "cora" and state["fail"]:
                raise RuntimeError("killed mid-sweep")
            return class_stats_cell(cell)

        definition = ExperimentDefinition(
            name="table2", title="t", builder=table2_spec,
            reduce=reduce_table2, cell=flaky_runner)
        store = get_artifact_store(tmp_path / "store")
        spec = build_spec("table2", datasets=("texas", "cora"), num_pairs=200)
        with pytest.raises(RuntimeError, match="killed"):
            execute(spec, definition=definition, store=store)
        assert store.stores == 1  # the texas cell survived the crash

        state["fail"] = False
        run = execute(spec, definition=definition, store=store)
        assert run.cells_resumed == 1  # texas served from the store
        assert run.cells_executed == 1  # only cora recomputed
        assert "texas" in run.result.stats and "cora" in run.result.stats

    def test_empty_grid_axis_runs_zero_cells(self):
        result = run_experiment("fig6", epsilons=(), print_result=False)
        assert result.cells == []

    def test_fig4_train_override_keeps_history_tracking(self):
        """A wholesale train override (the --quick transform) must not
        wipe the per-epoch history the fig4 curves are made of."""
        import math

        result = run_experiment("fig4", datasets=("genius",),
                                models=("sigma",), scale_factor=0.2,
                                train=TINY_CONFIG, print_result=False)
        curve = result.curve("sigma", "genius")
        assert curve.accuracies.size > 0
        assert not math.isnan(curve.final_accuracy)

    def test_force_recomputes_stored_cells(self, tmp_path):
        store = get_artifact_store(tmp_path / "store")
        kwargs = dict(datasets=("texas",), num_pairs=500, print_result=False,
                      store=store)
        run_experiment("table2", **kwargs)
        run_experiment("table2", force=True, **kwargs)
        assert store.hits == 0
        assert store.stores == 2

    def test_fig2_reuses_table2_cells(self, tmp_path):
        """Fig. 2 shares Table II's cell hashes: a store warmed by one
        serves the other without recomputation."""
        store = get_artifact_store(tmp_path / "shared")
        run_experiment("table2", datasets=("texas",), print_result=False,
                       store=store)
        assert (store.hits, store.stores) == (0, 1)
        result = run_experiment("fig2", datasets=("texas",), bins=10,
                                print_result=False, store=store)
        assert (store.hits, store.stores) == (1, 1)
        assert "texas" in result.histograms

    def test_artifact_record_embeds_resolved_spec(self, tmp_path):
        store = get_artifact_store(tmp_path / "store")
        run_experiment("table3", "pokec", scale_factor=0.25,
                       print_result=False, store=store)
        artifact = json.loads(store.artifact_path("table3").read_text())
        assert isinstance(artifact, list) and len(artifact) == 1
        record = artifact[0]
        assert record["experiment"] == "table3"
        spec = ExperimentSpec.from_dict(record["spec"])
        assert spec.base.dataset == "pokec"
        assert spec.base.scale_factor == 0.25
        assert record["cells"][0]["record"]["entries"]

    def test_execute_returns_cell_provenance(self):
        run = execute(build_spec("table3", "pokec", scale_factor=0.25))
        assert run.cells_executed == 1 and run.cells_resumed == 0
        assert run.outcomes[0].record["dataset"] == "pokec"
        assert run.result.cheapest_model() == "SIGMA"


class TestRegistry:
    def test_all_fifteen_experiments_registered(self):
        assert len(EXPERIMENT_MODULES) == 15
        assert EXPERIMENTS is EXPERIMENT_MODULES
        assert len(list_experiments()) == 15

    def test_definitions_have_titles_and_builders(self):
        for definition in list_experiments():
            assert definition.title
            spec = definition.default_spec()
            assert spec.name == definition.name
            assert spec.num_cells >= 1

    def test_unknown_experiment_raises(self):
        with pytest.raises(ExperimentError, match="unknown experiment"):
            run_experiment("table99", print_result=False)

    def test_unsupported_builder_argument_is_hard_error(self):
        """The registry replacement for the silent ``scale_factor`` drop:
        a knob the experiment does not define raises, never no-ops."""
        with pytest.raises(ExperimentError, match="fig1"):
            run_experiment("fig1", bogus_knob=3, print_result=False)

    def test_scale_factor_reaches_every_experiment(self):
        """``fig5`` historically lacked the ``scale_factor`` parameter and
        the old dispatcher silently dropped the flag; as a spec transform
        it now scales the synthetic grid by construction."""
        result = run_experiment("fig5", num_sizes=1, models=("sigma",),
                                config=TINY_CONFIG, scale_factor=0.05,
                                print_result=False)
        assert result.points[0].num_nodes < 600

    def test_build_spec_round_trips(self):
        spec = build_spec("fig6", "texas", epsilons=(0.1,), top_ks=(4, 8))
        clone = ExperimentSpec.from_dict(spec.to_dict())
        assert clone == spec

    def test_get_experiment_exposes_cell_runner(self):
        definition = get_experiment("table2")
        assert definition.cell is table2_simrank_stats.class_stats_cell


class TestRunnerCLI:
    def test_list_output(self, capsys):
        assert runner_main(["--list"]) == 0
        output = capsys.readouterr().out
        assert "available experiments" in output
        for name in ("fig6", "table5", "table11"):
            assert name in output

    def test_no_argument_lists(self, capsys):
        assert runner_main([]) == 0
        assert "available experiments" in capsys.readouterr().out

    def test_unknown_experiment_message(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            runner_main(["table99"])
        assert excinfo.value.code == 2
        assert "unknown experiment" in capsys.readouterr().err

    def test_describe_prints_resolved_spec(self, capsys):
        assert runner_main(["fig6", "--describe", "--scale-factor", "0.25"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["cells"] == 12
        assert payload["spec"]["base"]["scale_factor"] == 0.25
        assert payload["spec"]["name"] == "fig6"

    def test_fig6_end_to_end_at_smoke_scale(self, capsys, tmp_path):
        """The satellite pin: ``repro-experiment fig6 --scale-factor …``
        runs the full declarative grid and persists its artefact."""
        store_dir = tmp_path / "artifacts"
        assert runner_main(["fig6", "--scale-factor", "0.02", "--quick",
                            "--store", str(store_dir)]) == 0
        output = capsys.readouterr().out
        assert "== fig6 ==" in output
        assert "epsilon" in output and "top_k" in output
        artifact = json.loads((store_dir / "experiment-fig6.json").read_text())
        assert artifact[0]["cells_executed"] == 12
        assert len(list(store_dir.glob("cell-*.json"))) == 12

    def test_runner_dispatch_prints_table(self, capsys):
        result = run_experiment("table3", "pokec", scale_factor=0.25)
        assert result.cheapest_model() == "SIGMA"
        captured = capsys.readouterr()
        assert "table3" in captured.out
