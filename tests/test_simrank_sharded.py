"""Equivalence / determinism / property suite for the sharded LocalPush engine.

The dict backend remains the correctness oracle (a direct transcription of
Algorithm 1).  The sharded engine must:

* agree with the oracle within ``(1 − c)·ε`` max-norm in the operator
  configuration (``absorb_residual=True``) on every equivalence fixture,
  and within ``ε`` against the dense linearized series,
* return **bit-identical** matrices for every ``num_workers`` and for every
  shard count (shard partition and merge order are worker-independent),
* preserve the error bound on random weighted and disconnected graphs, and
* stream top-k pruning without changing the final
  ``top_k_per_row(..., keep_diagonal=True)`` result.
"""

import numpy as np
import pytest
import scipy.sparse as sp

from _simrank_fixtures import (
    disconnected as _disconnected,
    erdos_renyi as _erdos_renyi,
    sbm as _sbm,
    star as _star,
    weighted as _weighted,
)
from repro.errors import SimRankError
from repro.graphs.sparse import top_k_per_row
from repro.simrank.exact import linearized_simrank
from repro.simrank.localpush import (
    AUTO_BACKEND_MIN_NODES,
    AUTO_SHARDED_MIN_NODES,
    localpush_simrank,
    resolve_backend,
)
from repro.simrank.sharded import localpush_simrank_sharded

# This suite *is* the deprecated sharded shim's equivalence pin — calling it
# is the point.  Exempt exactly its own warning; any other DeprecationWarning
# is still an error under the tier-1 blanket filter.
pytestmark = pytest.mark.filterwarnings(
    "default:localpush_simrank_sharded is deprecated:DeprecationWarning")

DECAY = 0.6


EQUIVALENCE_GRAPHS = [
    pytest.param(lambda: _erdos_renyi(60, 0.08, seed=0), id="erdos-renyi-60"),
    pytest.param(lambda: _erdos_renyi(120, 0.05, seed=1), id="erdos-renyi-120"),
    pytest.param(lambda: _sbm(150, seed=2), id="sbm-150"),
    pytest.param(lambda: _sbm(150, seed=3, homophily=0.7), id="sbm-150-homophilous"),
    pytest.param(lambda: _weighted(40, seed=12), id="weighted-40"),
    pytest.param(_disconnected, id="disconnected"),
    pytest.param(lambda: _star(12), id="star-12"),
]


class TestShardedEquivalence:
    """The dict backend is the oracle; acceptance bound is (1 − c)·ε."""

    @pytest.mark.parametrize("make_graph", EQUIVALENCE_GRAPHS)
    @pytest.mark.parametrize("epsilon", [0.2, 0.05])
    def test_matches_dict_oracle_within_relaxed_epsilon(self, make_graph, epsilon):
        graph = make_graph()
        oracle = localpush_simrank(graph, epsilon=epsilon, prune=False,
                                   backend="dict")
        sharded = localpush_simrank(graph, epsilon=epsilon, prune=False,
                                    backend="sharded")
        diff = np.abs((oracle.matrix - sharded.matrix).toarray()).max()
        assert diff < epsilon

    @pytest.mark.parametrize("make_graph", EQUIVALENCE_GRAPHS)
    @pytest.mark.parametrize("epsilon", [0.2, 0.05])
    def test_operator_config_matches_oracle_within_tight_bound(self, make_graph,
                                                               epsilon):
        """Acceptance criterion: (1 − c)·ε max-norm vs the dict oracle.

        Both engines run the operator configuration
        (``absorb_residual=True``), which folds all sub-threshold residual
        mass into the estimate; the remaining disagreement is only the
        re-propagated tail, empirically well below ``(1 − c)·ε``.
        """
        graph = make_graph()
        oracle = localpush_simrank(graph, epsilon=epsilon, prune=False,
                                   absorb_residual=True, backend="dict")
        sharded = localpush_simrank(graph, epsilon=epsilon, prune=False,
                                    absorb_residual=True, backend="sharded")
        diff = np.abs((oracle.matrix - sharded.matrix).toarray()).max()
        assert diff < (1.0 - DECAY) * epsilon

    @pytest.mark.parametrize("make_graph", EQUIVALENCE_GRAPHS)
    def test_error_bound_against_linearized_series(self, make_graph):
        graph = make_graph()
        epsilon = 0.1
        reference = linearized_simrank(graph, num_iterations=60)
        result = localpush_simrank_sharded(graph, epsilon=epsilon, prune=False)
        assert np.abs(result.matrix.toarray() - reference).max() < epsilon

    @pytest.mark.parametrize("num_shards", [1, 3, 7])
    def test_shard_counts_agree_within_float_grouping(self, num_shards):
        """Shard sums regroup float additions; results agree to ~1e-12."""
        graph = _sbm(150, seed=4)
        base = localpush_simrank_sharded(graph, epsilon=0.1, prune=False,
                                         num_shards=1)
        other = localpush_simrank_sharded(graph, epsilon=0.1, prune=False,
                                          num_shards=num_shards)
        diff = np.abs((base.matrix - other.matrix).toarray()).max()
        assert diff < 1e-9


class TestDeterminism:
    """Bit-identical output for every worker count — pinned, not approximate."""

    @staticmethod
    def _assert_identical(a: sp.csr_matrix, b: sp.csr_matrix) -> None:
        assert np.array_equal(a.indptr, b.indptr)
        assert np.array_equal(a.indices, b.indices)
        assert np.array_equal(a.data, b.data)  # bitwise, no tolerance

    @pytest.mark.parametrize("workers", [2, 4])
    def test_workers_do_not_change_the_matrix(self, workers):
        graph = _sbm(200, seed=5)
        reference = localpush_simrank_sharded(graph, epsilon=0.05, prune=False,
                                              num_workers=1, num_shards=6)
        parallel = localpush_simrank_sharded(graph, epsilon=0.05, prune=False,
                                             num_workers=workers, num_shards=6)
        self._assert_identical(reference.matrix, parallel.matrix)
        assert reference.num_pushes == parallel.num_pushes
        assert reference.num_rounds == parallel.num_rounds

    @pytest.mark.parametrize("workers", [2, 4])
    def test_workers_do_not_change_streamed_topk(self, workers):
        graph = _sbm(200, seed=6)
        reference = localpush_simrank_sharded(graph, epsilon=0.1, prune=False,
                                              absorb_residual=True,
                                              stream_top_k=6, num_workers=1,
                                              num_shards=5)
        parallel = localpush_simrank_sharded(graph, epsilon=0.1, prune=False,
                                             absorb_residual=True,
                                             stream_top_k=6, num_workers=workers,
                                             num_shards=5)
        self._assert_identical(reference.matrix, parallel.matrix)

    def test_repeated_runs_are_identical(self):
        graph = _erdos_renyi(80, 0.07, seed=8)
        first = localpush_simrank_sharded(graph, epsilon=0.1, prune=False)
        second = localpush_simrank_sharded(graph, epsilon=0.1, prune=False)
        self._assert_identical(first.matrix, second.matrix)


class TestErrorBoundProperties:
    """Lemma III.5 on random weighted / disconnected graphs (seeded sweep)."""

    @pytest.mark.parametrize("seed", range(5))
    @pytest.mark.parametrize("epsilon", [0.3, 0.1])
    def test_random_weighted_graphs(self, seed, epsilon):
        graph = _weighted(30, seed=seed, density=0.2)
        reference = linearized_simrank(graph, num_iterations=60)
        result = localpush_simrank_sharded(graph, epsilon=epsilon, prune=False)
        assert np.abs(result.matrix.toarray() - reference).max() < epsilon

    @pytest.mark.parametrize("seed", range(3))
    def test_random_disconnected_graphs(self, seed):
        graph = _disconnected(seed=seed * 11 + 1)
        reference = linearized_simrank(graph, num_iterations=60)
        result = localpush_simrank_sharded(graph, epsilon=0.1, prune=False)
        assert np.abs(result.matrix.toarray() - reference).max() < 0.1

    def test_diagonal_always_positive(self):
        for make_graph in (_disconnected, lambda: _star(8)):
            result = localpush_simrank_sharded(make_graph(), epsilon=0.1)
            assert (result.matrix.diagonal() > 0).all()

    def test_large_epsilon_keeps_diagonal(self):
        # decay 0.6 → threshold = 0.4·ε ≥ 1 once ε ≥ 2.5: no push ever fires.
        result = localpush_simrank_sharded(_erdos_renyi(30, 0.15, seed=10),
                                           epsilon=3.0)
        assert (result.matrix.diagonal() > 0).all()


class TestStreamingTopK:
    """Streaming prune must equal pruning the fully materialised estimate."""

    @pytest.mark.parametrize("make_graph", EQUIVALENCE_GRAPHS)
    @pytest.mark.parametrize("k", [2, 8])
    def test_equals_posthoc_topk(self, make_graph, k):
        graph = make_graph()
        full = localpush_simrank_sharded(graph, epsilon=0.1, prune=False,
                                         absorb_residual=True)
        streamed = localpush_simrank_sharded(graph, epsilon=0.1, prune=False,
                                             absorb_residual=True,
                                             stream_top_k=k)
        expected = top_k_per_row(full.matrix, k, keep_diagonal=True)
        assert np.array_equal(streamed.matrix.indptr, expected.indptr)
        assert np.array_equal(streamed.matrix.indices, expected.indices)
        np.testing.assert_allclose(streamed.matrix.data, expected.data,
                                   rtol=0, atol=1e-12)

    @pytest.mark.parametrize("backend", ["dict", "vectorized", "sharded"])
    def test_semantics_uniform_across_backends(self, backend):
        """stream_top_k must not change meaning with the resolved engine."""
        graph = _sbm(150, seed=17)
        result = localpush_simrank(graph, epsilon=0.1, prune=False,
                                   absorb_residual=True, backend=backend,
                                   stream_top_k=5)
        assert np.diff(result.matrix.indptr).max() <= 5
        assert (result.matrix.diagonal() > 0).all()

    def test_invalid_stream_top_k_rejected_for_every_backend(self, tiny_graph):
        for backend in ("dict", "vectorized", "sharded"):
            with pytest.raises(SimRankError):
                localpush_simrank(tiny_graph, epsilon=0.1, backend=backend,
                                  stream_top_k=0)

    def test_row_budget_and_diagonal(self):
        graph = _sbm(150, seed=9)
        result = localpush_simrank_sharded(graph, epsilon=0.1, prune=False,
                                           absorb_residual=True, stream_top_k=4)
        assert np.diff(result.matrix.indptr).max() <= 4
        assert (result.matrix.diagonal() > 0).all()

    def test_streamed_memory_stays_bounded(self):
        """Mid-loop the estimate must stay well below the unpruned size."""
        graph = _sbm(200, seed=10)
        k = 4
        full = localpush_simrank_sharded(graph, epsilon=0.05, prune=False,
                                         absorb_residual=True)
        streamed = localpush_simrank_sharded(graph, epsilon=0.05, prune=False,
                                             absorb_residual=True,
                                             stream_top_k=k)
        assert streamed.matrix.nnz <= k * graph.num_nodes
        assert streamed.matrix.nnz < full.matrix.nnz

    def test_operator_pipeline_uses_streaming(self):
        from repro.simrank.topk import simrank_operator

        from repro.config import SimRankConfig

        graph = _sbm(150, seed=11)
        operator = simrank_operator(graph, config=SimRankConfig(
            method="localpush", epsilon=0.1, top_k=4, backend="sharded"))
        baseline = simrank_operator(graph, config=SimRankConfig(
            method="localpush", epsilon=0.1, top_k=4, backend="vectorized"))
        assert operator.backend == "sharded"
        assert np.diff(operator.matrix.indptr).max() <= 4
        diff = np.abs((operator.matrix - baseline.matrix).toarray()).max()
        assert diff < 0.1


class TestBackendSelection:
    """Pin the auto-selection ladder (satellite: threshold regression guard)."""

    def test_thresholds_are_pinned(self):
        assert AUTO_BACKEND_MIN_NODES == 256
        assert AUTO_SHARDED_MIN_NODES == 4096

    def test_resolution_ladder(self):
        assert resolve_backend("auto", AUTO_BACKEND_MIN_NODES - 1) == "dict"
        assert resolve_backend("auto", AUTO_BACKEND_MIN_NODES) == "vectorized"
        assert resolve_backend("auto", AUTO_SHARDED_MIN_NODES - 1) == "vectorized"
        assert resolve_backend("auto", AUTO_SHARDED_MIN_NODES) == "sharded"

    def test_explicit_backends_pass_through(self):
        for name in ("dict", "vectorized", "sharded"):
            assert resolve_backend(name, 10) == name
            assert resolve_backend(name, 10**6) == name

    def test_unknown_backend_rejected(self):
        with pytest.raises(SimRankError):
            resolve_backend("gpu", 100)

    def test_auto_dispatch_uses_sharded_above_threshold(self, monkeypatch):
        import repro.simrank.localpush as localpush_module

        monkeypatch.setattr(localpush_module, "AUTO_SHARDED_MIN_NODES", 100)
        graph = _sbm(150, seed=12)
        result = localpush_simrank(graph, epsilon=0.1, backend="auto")
        assert result.backend == "sharded"

    def test_auto_dispatch_below_thresholds(self):
        small = _erdos_renyi(50, 0.1, seed=13)
        assert localpush_simrank(small, epsilon=0.1).backend == "dict"


class TestShardedParameters:
    def test_invalid_parameters(self, tiny_graph):
        with pytest.raises(SimRankError):
            localpush_simrank_sharded(tiny_graph, epsilon=0.0)
        with pytest.raises(SimRankError):
            localpush_simrank_sharded(tiny_graph, decay=1.0)
        with pytest.raises(SimRankError):
            localpush_simrank_sharded(tiny_graph, num_workers=0)
        with pytest.raises(SimRankError):
            localpush_simrank_sharded(tiny_graph, num_shards=0)
        with pytest.raises(SimRankError):
            localpush_simrank_sharded(tiny_graph, stream_top_k=0)

    def test_max_pushes_cap(self):
        graph = _sbm(150, seed=14)
        with pytest.raises(SimRankError):
            localpush_simrank_sharded(graph, epsilon=0.01, max_pushes=5)

    def test_metadata(self):
        graph = _sbm(150, seed=15)
        result = localpush_simrank_sharded(graph, epsilon=0.1, num_workers=3,
                                           num_shards=2)
        assert result.backend == "sharded"
        assert result.num_workers == 3
        assert result.num_shards == 2
        assert result.num_rounds is not None and result.num_rounds > 0
        assert result.num_pushes > 0
        assert result.elapsed_seconds >= 0.0

    def test_prune_keeps_offdiagonal_above_floor(self):
        graph = _sbm(150, seed=16)
        result = localpush_simrank_sharded(graph, epsilon=0.1, prune=True)
        offdiag = result.matrix.copy().tolil()
        offdiag.setdiag(0)
        values = offdiag.tocsr()
        values.eliminate_zeros()
        if values.nnz:
            assert values.data.min() >= 0.1 / 10.0


@pytest.mark.slow
class TestShardedStress:
    """Large-graph stress runs; excluded from the fast default selection."""

    def test_large_graph_equivalence_and_worker_determinism(self):
        graph = _sbm(2000, seed=20)
        vectorized = localpush_simrank(graph, epsilon=0.1, prune=False,
                                       backend="vectorized")
        serial = localpush_simrank_sharded(graph, epsilon=0.1, prune=False,
                                           num_workers=1)
        parallel = localpush_simrank_sharded(graph, epsilon=0.1, prune=False,
                                             num_workers=4)
        assert np.array_equal(serial.matrix.indices, parallel.matrix.indices)
        assert np.array_equal(serial.matrix.data, parallel.matrix.data)
        diff = np.abs((vectorized.matrix - serial.matrix).toarray()).max()
        assert diff < 0.1
        assert serial.num_shards >= 2  # the frontier actually sharded

    def test_large_graph_streaming_topk_bounds_memory(self):
        graph = _sbm(2000, seed=21)
        k = 8
        streamed = localpush_simrank_sharded(graph, epsilon=0.1, prune=False,
                                             absorb_residual=True,
                                             stream_top_k=k)
        assert streamed.matrix.nnz <= k * graph.num_nodes
        assert (streamed.matrix.diagonal() > 0).all()
