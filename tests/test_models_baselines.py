"""Model-specific tests for the baseline implementations."""

import numpy as np
import pytest

from repro.models.appnp import APPNP
from repro.models.gcn import GCN
from repro.models.gat import GAT, GATLayer
from repro.models.glognn import GloGNN
from repro.models.h2gcn import H2GCN, _two_hop_adjacency
from repro.models.linkx import LINKX
from repro.models.pprgo import PPRGo
from repro.models.sgc import SGC


class TestGCN:
    def test_layer_count_controls_parameters(self, small_heterophilous_graph):
        shallow = GCN(small_heterophilous_graph, hidden=16, num_layers=1, rng=0)
        deep = GCN(small_heterophilous_graph, hidden=16, num_layers=3, rng=0)
        assert deep.num_parameters() > shallow.num_parameters()

    def test_invalid_layers(self, small_heterophilous_graph):
        with pytest.raises(ValueError):
            GCN(small_heterophilous_graph, num_layers=0)

    def test_aggregation_time_recorded(self, small_heterophilous_graph):
        model = GCN(small_heterophilous_graph, hidden=16, rng=0)
        model.forward()
        assert model.timing.aggregation >= 0.0
        assert "aggregation" in model.timing.buckets


class TestSGC:
    def test_propagation_precomputed_once(self, small_heterophilous_graph):
        model = SGC(small_heterophilous_graph, num_steps=2, rng=0)
        cached = model._propagated
        model.forward()
        assert model._propagated is cached  # forward does not re-propagate

    def test_zero_steps_equals_linear_on_features(self, small_heterophilous_graph):
        graph = small_heterophilous_graph
        model = SGC(graph, num_steps=0, rng=0)
        model.eval()
        logits = model.forward()
        expected = graph.features @ model.linear.weight.value + model.linear.bias.value
        np.testing.assert_allclose(logits, expected)


class TestGATLayer:
    def test_attention_weights_sum_to_one_per_target(self, tiny_graph):
        layer = GATLayer(2, 3, tiny_graph.edge_list(), tiny_graph.num_nodes, rng=0)
        layer(tiny_graph.features)
        attention = layer._cache["attention"]
        sums = np.zeros(tiny_graph.num_nodes)
        np.add.at(sums, layer.targets, attention)
        np.testing.assert_allclose(sums, 1.0)

    def test_output_shape(self, tiny_graph):
        layer = GATLayer(2, 5, tiny_graph.edge_list(), tiny_graph.num_nodes, rng=0)
        assert layer(tiny_graph.features).shape == (6, 5)

    def test_multi_head_concatenation_width(self, small_heterophilous_graph):
        model = GAT(small_heterophilous_graph, hidden=4, num_heads=3, rng=0)
        logits = model.forward()
        assert logits.shape == (small_heterophilous_graph.num_nodes,
                                small_heterophilous_graph.num_classes)


class TestAPPNPAndPPRGo:
    def test_appnp_alpha_one_matches_mlp_predictions(self, small_heterophilous_graph):
        graph = small_heterophilous_graph
        model = APPNP(graph, hidden=16, alpha=1.0, num_steps=4, dropout=0.0, rng=0)
        model.eval()
        logits = model.forward()
        np.testing.assert_allclose(logits, model.mlp(graph.features))

    def test_pprgo_operator_is_sparse_topk(self, small_heterophilous_graph):
        model = PPRGo(small_heterophilous_graph, hidden=16, top_k=8, rng=0)
        row_counts = np.diff(model.propagation.operator.indptr)
        assert (row_counts <= 9).all()
        assert model.timing.precompute > 0.0


class TestLINKX:
    def test_no_aggregation_time(self, small_heterophilous_graph):
        model = LINKX(small_heterophilous_graph, hidden=16, rng=0)
        model.forward()
        assert model.timing.aggregation == 0.0

    def test_backward_before_forward_raises(self, small_heterophilous_graph):
        model = LINKX(small_heterophilous_graph, hidden=16, rng=0)
        with pytest.raises(RuntimeError):
            model.backward(np.zeros((small_heterophilous_graph.num_nodes,
                                     small_heterophilous_graph.num_classes)))


class TestGloGNN:
    def test_invalid_hyperparameters(self, small_heterophilous_graph):
        with pytest.raises(ValueError):
            GloGNN(small_heterophilous_graph, delta=2.0)
        with pytest.raises(ValueError):
            GloGNN(small_heterophilous_graph, k_hops=0)

    def test_ablation_switches(self, small_heterophilous_graph):
        graph = small_heterophilous_graph
        without_features = GloGNN(graph, hidden=16, use_features=False, rng=0)
        without_adjacency = GloGNN(graph, hidden=16, use_adjacency=False, rng=0)
        without_features.eval()
        without_adjacency.eval()
        assert not np.allclose(without_features.forward(), without_adjacency.forward())

    def test_aggregation_cost_scales_with_norm_layers(self, small_heterophilous_graph):
        graph = small_heterophilous_graph
        cheap = GloGNN(graph, hidden=16, norm_layers=1, rng=0)
        expensive = GloGNN(graph, hidden=16, norm_layers=3, rng=0)
        cheap.forward()
        expensive.forward()
        assert expensive.timing.aggregation >= cheap.timing.aggregation


class TestH2GCN:
    def test_two_hop_excludes_direct_neighbours_and_self(self, tiny_graph):
        two_hop = _two_hop_adjacency(tiny_graph.adjacency)
        dense = two_hop.toarray()
        assert np.allclose(np.diag(dense), 0.0)
        overlap = dense * tiny_graph.adjacency.toarray()
        assert np.allclose(overlap, 0.0)

    def test_two_hop_reaches_distance_two(self, path_graph):
        two_hop = _two_hop_adjacency(path_graph.adjacency).toarray()
        assert two_hop[0, 2] > 0
        assert two_hop[0, 1] == 0

    def test_head_width_matches_round_count(self, small_heterophilous_graph):
        one_round = H2GCN(small_heterophilous_graph, hidden=8, num_rounds=1, rng=0)
        two_rounds = H2GCN(small_heterophilous_graph, hidden=8, num_rounds=2, rng=0)
        assert two_rounds.head.in_features > one_round.head.in_features
