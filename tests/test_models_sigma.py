"""Tests specific to the SIGMA model (the paper's contribution)."""

import numpy as np
import pytest

from repro.config import SimRankConfig
from repro.errors import ModelError
from repro.models.sigma import SIGMA
from repro.models.sigma_iterative import SIGMAIterative
from repro.nn.losses import softmax_cross_entropy
from repro.nn.optim import Adam


@pytest.fixture()
def graph(small_heterophilous_graph):
    return small_heterophilous_graph


class TestSIGMAConstruction:
    def test_precompute_time_recorded(self, graph):
        model = SIGMA(graph, hidden=16, simrank=SimRankConfig(top_k=8), rng=0)
        assert model.timing.precompute > 0.0
        assert model.simrank is not None
        assert model.simrank.top_k == 8

    def test_equation_six_update(self, graph):
        """The forward pass implements Z = (1-α)·S·H + α·H before the head."""
        model = SIGMA(graph, hidden=16, simrank=SimRankConfig(top_k=8), rng=0, learn_alpha=False, alpha=0.3,
                      dropout=0.0)
        model.eval()
        logits = model.forward()
        cache = model._cache
        manual = (1 - 0.3) * (model.propagation.operator @ cache["hidden"]) \
            + 0.3 * cache["hidden"]
        np.testing.assert_allclose(logits, model.head(manual))

    def test_alpha_fixed_when_not_learnable(self, graph):
        model = SIGMA(graph, hidden=16, simrank=SimRankConfig(top_k=8), rng=0, learn_alpha=False, alpha=0.25)
        assert model.alpha == pytest.approx(0.25)
        assert all(p is not model._alpha_param for p in model.parameters())

    def test_alpha_learnable_changes_with_training(self, graph):
        model = SIGMA(graph, hidden=16, simrank=SimRankConfig(top_k=8), rng=0, learn_alpha=True, dropout=0.0)
        initial_alpha = model.alpha
        optimizer = Adam(model.parameters(), lr=0.05)
        for _ in range(30):
            optimizer.zero_grad()
            _, grad = model.loss_and_grad()
            model.backward(grad)
            optimizer.step()
        assert model.alpha != pytest.approx(initial_alpha, abs=1e-6)
        assert 0.0 < model.alpha < 1.0

    def test_invalid_delta(self, graph):
        with pytest.raises(ModelError):
            SIGMA(graph, delta=1.5)

    def test_invalid_operator_mode(self, graph):
        with pytest.raises(ModelError):
            SIGMA(graph, operator_mode="laplacian")

    def test_requires_some_input(self, graph):
        with pytest.raises(ModelError):
            SIGMA(graph, use_features=False, use_adjacency=False)


class TestSIGMAAblations:
    def test_without_simrank_skips_precompute(self, graph):
        model = SIGMA(graph, hidden=16, use_simrank=False, rng=0)
        assert model.simrank is None
        assert model.alpha == 1.0
        logits = model.forward()
        assert logits.shape == (graph.num_nodes, graph.num_classes)

    def test_without_features_uses_delta_zero(self, graph):
        model = SIGMA(graph, hidden=16, simrank=SimRankConfig(top_k=8), use_features=False, rng=0)
        assert model.effective_delta == 0.0
        assert model.mlp_features is None

    def test_without_adjacency_uses_delta_one(self, graph):
        model = SIGMA(graph, hidden=16, simrank=SimRankConfig(top_k=8), use_adjacency=False, rng=0)
        assert model.effective_delta == 1.0
        assert model.mlp_adjacency is None

    def test_simrank_adj_operator_differs_and_is_normalized(self, graph):
        """The S·A ablation produces a different, row-normalised operator."""
        local = SIGMA(graph, hidden=16, simrank=SimRankConfig(top_k=None), operator_mode="simrank_adj", rng=0)
        global_ = SIGMA(graph, hidden=16, simrank=SimRankConfig(top_k=None), operator_mode="simrank", rng=0)
        local_op = local.propagation.operator
        sums = np.asarray(local_op.sum(axis=1)).ravel()
        np.testing.assert_allclose(sums[sums > 0], 1.0)
        assert (local_op != global_.propagation.operator).nnz > 0

    def test_ablations_give_different_predictions(self, graph):
        full = SIGMA(graph, hidden=16, simrank=SimRankConfig(top_k=8), rng=0, dropout=0.0)
        no_simrank = SIGMA(graph, hidden=16, simrank=SimRankConfig(top_k=8), rng=0, use_simrank=False,
                           dropout=0.0)
        full.eval()
        no_simrank.eval()
        assert not np.allclose(full.forward(), no_simrank.forward())


class TestSIGMAEmbeddings:
    def test_embeddings_shape(self, graph):
        model = SIGMA(graph, hidden=16, simrank=SimRankConfig(top_k=8), rng=0)
        embeddings = model.embeddings()
        assert embeddings.shape == (graph.num_nodes, 16)

    def test_grouping_tendency_after_training(self, graph):
        """After training, same-class embeddings are more similar on average."""
        model = SIGMA(graph, hidden=16, simrank=SimRankConfig(top_k=8), rng=0, dropout=0.0)
        optimizer = Adam(model.parameters(), lr=0.02)
        for _ in range(60):
            optimizer.zero_grad()
            _, grad = model.loss_and_grad()
            model.backward(grad)
            optimizer.step()
        embeddings = model.embeddings()
        normalized = embeddings / np.maximum(
            np.linalg.norm(embeddings, axis=1, keepdims=True), 1e-12)
        labels = graph.labels
        same, diff = [], []
        rng = np.random.default_rng(0)
        for _ in range(3000):
            u, v = rng.integers(0, graph.num_nodes, size=2)
            if u == v:
                continue
            sim = float(normalized[u] @ normalized[v])
            (same if labels[u] == labels[v] else diff).append(sim)
        assert np.mean(same) > np.mean(diff)


class TestSIGMAIterative:
    def test_forward_shape(self, graph):
        model = SIGMAIterative(graph, hidden=16, num_layers=2, simrank=SimRankConfig(top_k=8), rng=0)
        assert model.forward().shape == (graph.num_nodes, graph.num_classes)

    def test_layer_count_validated(self, graph):
        with pytest.raises(ModelError):
            SIGMAIterative(graph, num_layers=0)

    def test_backward_populates_gradients(self, graph):
        model = SIGMAIterative(graph, hidden=16, num_layers=2, simrank=SimRankConfig(top_k=8), rng=0)
        model.zero_grad()
        logits = model.forward()
        _, grad = softmax_cross_entropy(logits, graph.labels)
        model.backward(grad)
        assert sum(np.abs(p.grad).sum() for p in model.parameters()) > 0.0
