"""Tests for the LocalPush approximation (Algorithm 1, Lemma III.5)."""

import numpy as np
import pytest

from repro.errors import SimRankError
from repro.simrank.exact import linearized_simrank
from repro.simrank.localpush import localpush_simrank


class TestLocalPushGuarantee:
    @pytest.mark.parametrize("epsilon", [0.2, 0.1, 0.05])
    def test_max_norm_error_bound(self, tiny_graph, epsilon):
        """Lemma III.5: stopping at (1-c)·ε residuals gives ‖Ŝ − S‖_max < ε."""
        reference = linearized_simrank(tiny_graph, num_iterations=60)
        result = localpush_simrank(tiny_graph, epsilon=epsilon, prune=False)
        approx = result.matrix.toarray()
        assert np.abs(approx - reference).max() < epsilon

    def test_absorbing_residual_improves_accuracy(self, small_heterophilous_graph):
        graph = small_heterophilous_graph
        reference = linearized_simrank(graph, num_iterations=40)
        plain = localpush_simrank(graph, epsilon=0.1, prune=False).matrix.toarray()
        absorbed = localpush_simrank(graph, epsilon=0.1, prune=False,
                                     absorb_residual=True).matrix.toarray()
        assert np.abs(absorbed - reference).max() <= np.abs(plain - reference).max() + 1e-12

    def test_smaller_epsilon_is_more_accurate(self, tiny_graph):
        reference = linearized_simrank(tiny_graph, num_iterations=60)
        loose = localpush_simrank(tiny_graph, epsilon=0.3, prune=False).matrix.toarray()
        tight = localpush_simrank(tiny_graph, epsilon=0.02, prune=False).matrix.toarray()
        assert (np.abs(tight - reference).max()
                <= np.abs(loose - reference).max() + 1e-12)

    def test_smaller_epsilon_needs_more_pushes(self, small_heterophilous_graph):
        loose = localpush_simrank(small_heterophilous_graph, epsilon=0.3)
        tight = localpush_simrank(small_heterophilous_graph, epsilon=0.05)
        assert tight.num_pushes >= loose.num_pushes


class TestLocalPushOutput:
    def test_matrix_is_sparse_and_symmetric_shape(self, small_heterophilous_graph):
        result = localpush_simrank(small_heterophilous_graph, epsilon=0.1)
        n = small_heterophilous_graph.num_nodes
        assert result.matrix.shape == (n, n)
        assert result.matrix.nnz < n * n

    def test_diagonal_present(self, tiny_graph):
        result = localpush_simrank(tiny_graph, epsilon=0.1)
        diag = result.matrix.diagonal()
        assert (diag > 0).all()

    def test_pruning_removes_small_offdiagonal_entries(self, small_heterophilous_graph):
        pruned = localpush_simrank(small_heterophilous_graph, epsilon=0.1, prune=True)
        unpruned = localpush_simrank(small_heterophilous_graph, epsilon=0.1, prune=False)
        assert pruned.matrix.nnz <= unpruned.matrix.nnz
        offdiag = pruned.matrix.copy().tolil()
        offdiag.setdiag(0)
        values = offdiag.tocsr().data
        if values.size:
            assert values.min() >= 0.1 / 10.0

    def test_nonnegative_scores(self, small_heterophilous_graph):
        result = localpush_simrank(small_heterophilous_graph, epsilon=0.1)
        assert result.matrix.data.min() >= 0.0

    def test_metadata_fields(self, tiny_graph):
        result = localpush_simrank(tiny_graph, epsilon=0.1)
        assert result.num_pushes > 0
        assert result.elapsed_seconds >= 0.0
        assert result.epsilon == 0.1
        assert result.decay == 0.6


class TestLocalPushValidation:
    def test_invalid_epsilon(self, tiny_graph):
        with pytest.raises(SimRankError):
            localpush_simrank(tiny_graph, epsilon=0.0)

    def test_invalid_decay(self, tiny_graph):
        with pytest.raises(SimRankError):
            localpush_simrank(tiny_graph, decay=0.0)

    def test_max_pushes_cap(self, small_heterophilous_graph):
        with pytest.raises(SimRankError):
            localpush_simrank(small_heterophilous_graph, epsilon=0.01, max_pushes=5)
