"""Unit tests for ExperimentSpec / ExperimentCell / grid_product."""

import pytest

from repro.config import (
    SIGMA_DEFAULT_SIMRANK,
    ExperimentSpec,
    RunSpec,
    SimRankConfig,
    grid_product,
)
from repro.errors import ConfigError
from repro.training.config import TrainConfig


def make_spec(**changes):
    defaults = dict(
        name="demo",
        title="demo spec",
        base=RunSpec(model="sigma", dataset="texas", repeats=1,
                     simrank=SIGMA_DEFAULT_SIMRANK),
    )
    defaults.update(changes)
    return ExperimentSpec(**defaults)


class TestGridProduct:
    def test_first_axis_varies_slowest(self):
        grid = grid_product({"model": ("a", "b"), "dataset": ("x", "y")})
        assert grid == (
            {"model": "a", "dataset": "x"}, {"model": "a", "dataset": "y"},
            {"model": "b", "dataset": "x"}, {"model": "b", "dataset": "y"},
        )

    def test_single_axis(self):
        assert grid_product({"k": (1, 2, 3)}) == ({"k": 1}, {"k": 2}, {"k": 3})

    def test_rejects_non_mapping(self):
        with pytest.raises(ConfigError):
            grid_product([("k", (1, 2))])


class TestCellExpansion:
    def test_default_grid_is_one_base_cell(self):
        spec = make_spec()
        cells = spec.cells()
        assert len(cells) == 1 and spec.num_cells == 1
        assert cells[0].spec == spec.base
        assert cells[0].overrides == {}

    def test_explicit_empty_grid_runs_zero_cells(self):
        """An empty axis sweeps nothing — it never silently falls back to
        an un-requested base run."""
        spec = make_spec(grid=grid_product({"simrank.top_k": ()}))
        assert spec.cells() == [] and spec.num_cells == 0

    def test_direct_spec_fields(self):
        spec = make_spec(grid=({"dataset": "cora", "seed": 7},))
        cell = spec.cells()[0]
        assert cell.spec.dataset == "cora"
        assert cell.spec.seed == 7
        assert cell.spec.model == "sigma"

    def test_overrides_prefix_merges_with_base_overrides(self):
        base = RunSpec(model="sigma", dataset="texas",
                       overrides={"final_layers": 2})
        spec = make_spec(base=base, grid=({"overrides.delta": 0.3},))
        cell = spec.cells()[0]
        assert cell.spec.overrides == {"final_layers": 2, "delta": 0.3}

    def test_simrank_prefix_overrides_base_config(self):
        spec = make_spec(grid=({"simrank.epsilon": 0.05,
                                "simrank.top_k": 16},))
        cell = spec.cells()[0]
        assert cell.spec.simrank == SIGMA_DEFAULT_SIMRANK.with_overrides(
            epsilon=0.05, top_k=16)

    def test_simrank_prefix_without_base_config_rejected(self):
        base = RunSpec(model="sigma", dataset="texas")
        with pytest.raises(ConfigError, match="no SimRankConfig"):
            make_spec(base=base, grid=({"simrank.epsilon": 0.05},))

    def test_train_prefix_overrides_training(self):
        spec = make_spec(grid=({"train.max_epochs": 42},))
        assert spec.cells()[0].spec.train.max_epochs == 42

    def test_declared_param_overridable_per_cell(self):
        spec = make_spec(params={"label": ""},
                         grid=({"label": "a"}, {"label": "b"}))
        assert [cell.params["label"] for cell in spec.cells()] == ["a", "b"]

    def test_undeclared_cell_key_is_hard_error(self):
        with pytest.raises(ConfigError, match="unknown cell key"):
            make_spec(grid=({"scale": 0.5},))

    def test_base_simrank_dropped_for_baseline_cells(self):
        """A grid mixing SIGMA with baselines inherits the operator config
        only on the SIGMA cells (the fig5 pattern)."""
        spec = make_spec(grid=({"model": "sigma"}, {"model": "glognn"}))
        sigma_cell, glognn_cell = spec.cells()
        assert sigma_cell.spec.simrank == SIGMA_DEFAULT_SIMRANK
        assert glognn_cell.spec.simrank is None

    def test_explicit_simrank_key_on_baseline_still_rejected(self):
        with pytest.raises(ConfigError):
            make_spec(grid=({"model": "glognn", "simrank.epsilon": 0.05},))

    def test_cell_indices_follow_grid_order(self):
        spec = make_spec(grid=grid_product({"simrank.top_k": (4, 8, 16)}))
        assert [cell.index for cell in spec.cells()] == [0, 1, 2]
        assert spec.num_cells == 3


class TestSpecValidation:
    def test_name_required(self):
        with pytest.raises(ConfigError):
            make_spec(name="")

    def test_name_lowercased(self):
        assert make_spec(name="Fig6").name == "fig6"

    def test_base_must_be_runspec(self):
        with pytest.raises(ConfigError):
            make_spec(base={"model": "sigma"})

    def test_grid_entries_must_be_mappings(self):
        with pytest.raises(ConfigError):
            make_spec(grid=("not-a-mapping",))

    def test_malformed_grid_fails_at_construction(self):
        # Expansion happens eagerly in __post_init__, not at run time.
        with pytest.raises(ConfigError):
            make_spec(grid=({"simrank.no_such_field": 1},))


class TestTransforms:
    def test_with_base_rescales_every_cell(self):
        spec = make_spec(grid=({"dataset": "texas"}, {"dataset": "cora"}))
        scaled = spec.with_base(scale_factor=0.25)
        assert all(cell.spec.scale_factor == 0.25 for cell in scaled.cells())
        # The original is untouched (frozen value semantics).
        assert all(cell.spec.scale_factor == 1.0 for cell in spec.cells())

    def test_with_train_swaps_protocol(self):
        quick = TrainConfig(max_epochs=5, patience=2, min_epochs=1)
        spec = make_spec().with_train(quick)
        assert spec.cells()[0].spec.train == quick

    def test_with_overrides_rejects_unknown_field(self):
        with pytest.raises(ConfigError):
            make_spec().with_overrides(color="red")


class TestSerialisation:
    def test_round_trip(self):
        spec = make_spec(
            grid=grid_product({"simrank.epsilon": (0.05, 0.1),
                               "simrank.top_k": (8, 16)}),
            params={"tune": True},
            reduction={"bins": 20})
        clone = ExperimentSpec.from_dict(spec.to_dict())
        assert clone == spec
        assert [c.spec for c in clone.cells()] == [c.spec for c in spec.cells()]

    def test_from_dict_rejects_unknown_fields(self):
        payload = make_spec().to_dict()
        payload["surprise"] = 1
        with pytest.raises(ConfigError):
            ExperimentSpec.from_dict(payload)

    def test_to_dict_is_json_ready(self):
        import json

        spec = make_spec(params={"num_pairs": 1000})
        assert json.loads(json.dumps(spec.to_dict())) == spec.to_dict()
