"""Equivalence suite for the vectorized LocalPush backend + bugfix regressions.

The dict backend is the correctness oracle (a direct transcription of
Algorithm 1); the vectorized frontier-batched engine must agree with it
within the configured ``ε`` on every graph family, and both must satisfy
the ``‖Ŝ − S‖_max < ε`` bound against the dense linearized series.

Also contains regression tests for the three bugfixes shipped alongside
the engine:

* ``top_k_per_row(keep_diagonal=True)`` keeping ``k + 1`` entries per row,
* ``localpush_simrank`` returning an empty diagonal when ``ε ≥ 1/(1−c)``,
* ``SIGMA._sigmoid`` overflowing ``np.exp`` for large-magnitude logits.
"""

import numpy as np
import pytest
import scipy.sparse as sp

from _simrank_fixtures import (
    erdos_renyi as _erdos_renyi,
    sbm as _sbm,
    star as _star,
    with_isolated as _with_isolated,
)
from repro.errors import SimRankError
from repro.graphs.graph import Graph
from repro.graphs.sparse import top_k_per_row
from repro.models.sigma import _sigmoid
from repro.simrank.exact import linearized_simrank
from repro.simrank.localpush import localpush_simrank
from repro.simrank.localpush_vec import localpush_simrank_vectorized

# This suite *is* the deprecated vectorized shim's equivalence pin — calling
# it is the point.  Exempt exactly its own warning; any other
# DeprecationWarning is still an error under the tier-1 blanket filter.
pytestmark = pytest.mark.filterwarnings(
    "default:localpush_simrank_vectorized is deprecated:DeprecationWarning")


EQUIVALENCE_GRAPHS = [
    pytest.param(lambda: _erdos_renyi(60, 0.08, seed=0), id="erdos-renyi-60"),
    pytest.param(lambda: _erdos_renyi(120, 0.05, seed=1), id="erdos-renyi-120"),
    pytest.param(lambda: _sbm(150, seed=2), id="sbm-150"),
    pytest.param(lambda: _sbm(150, seed=3, homophily=0.7), id="sbm-150-homophilous"),
    pytest.param(_with_isolated, id="isolated-nodes"),
    pytest.param(lambda: _star(12), id="star-12"),
]


class TestBackendEquivalence:
    @pytest.mark.parametrize("make_graph", EQUIVALENCE_GRAPHS)
    @pytest.mark.parametrize("epsilon", [0.2, 0.05])
    def test_matches_dict_oracle_within_epsilon(self, make_graph, epsilon):
        graph = make_graph()
        oracle = localpush_simrank(graph, epsilon=epsilon, prune=False,
                                   backend="dict")
        vectorized = localpush_simrank(graph, epsilon=epsilon, prune=False,
                                       backend="vectorized")
        diff = np.abs((oracle.matrix - vectorized.matrix).toarray()).max()
        assert diff < epsilon

    @pytest.mark.parametrize("make_graph", EQUIVALENCE_GRAPHS)
    def test_error_bound_against_linearized_series(self, make_graph):
        graph = make_graph()
        epsilon = 0.1
        reference = linearized_simrank(graph, num_iterations=60)
        result = localpush_simrank_vectorized(graph, epsilon=epsilon, prune=False)
        assert np.abs(result.matrix.toarray() - reference).max() < epsilon

    @pytest.mark.parametrize("make_graph", EQUIVALENCE_GRAPHS)
    def test_absorb_residual_equivalence(self, make_graph):
        graph = make_graph()
        epsilon = 0.1
        oracle = localpush_simrank(graph, epsilon=epsilon, prune=False,
                                   absorb_residual=True, backend="dict")
        vectorized = localpush_simrank(graph, epsilon=epsilon, prune=False,
                                       absorb_residual=True, backend="vectorized")
        diff = np.abs((oracle.matrix - vectorized.matrix).toarray()).max()
        assert diff < epsilon

    @pytest.mark.parametrize("epsilon", [0.1, 0.05])
    def test_weighted_graph_equivalence(self, epsilon):
        """Both backends must walk W = A·D⁻¹ with *weighted* degrees."""
        rng = np.random.default_rng(12)
        n = 40
        upper = np.triu(rng.integers(0, 5, size=(n, n)) * (rng.random((n, n)) < 0.15), k=1)
        graph = Graph(sp.csr_matrix(upper + upper.T), name="weighted")
        reference = linearized_simrank(graph, num_iterations=60)
        oracle = localpush_simrank(graph, epsilon=epsilon, prune=False,
                                   backend="dict")
        vectorized = localpush_simrank(graph, epsilon=epsilon, prune=False,
                                       backend="vectorized")
        assert np.abs(oracle.matrix.toarray() - reference).max() < epsilon
        assert np.abs(vectorized.matrix.toarray() - reference).max() < epsilon
        diff = np.abs((oracle.matrix - vectorized.matrix).toarray()).max()
        assert diff < epsilon

    def test_auto_backend_dispatch(self):
        small = _erdos_renyi(50, 0.1, seed=4)       # below the auto threshold
        large = _sbm(300, seed=5)                   # above it
        assert localpush_simrank(small, epsilon=0.1).backend == "dict"
        assert localpush_simrank(large, epsilon=0.1).backend == "vectorized"

    def test_unknown_backend_rejected(self, tiny_graph):
        with pytest.raises(SimRankError):
            localpush_simrank(tiny_graph, epsilon=0.1, backend="gpu")


class TestVectorizedOutput:
    def test_pruning_keeps_offdiagonal_above_floor(self):
        graph = _sbm(150, seed=6)
        result = localpush_simrank_vectorized(graph, epsilon=0.1, prune=True)
        offdiag = result.matrix.copy().tolil()
        offdiag.setdiag(0)
        values = offdiag.tocsr()
        values.eliminate_zeros()
        if values.nnz:
            assert values.data.min() >= 0.1 / 10.0

    def test_diagonal_always_positive(self):
        for make_graph in (_with_isolated, lambda: _star(8)):
            result = localpush_simrank_vectorized(make_graph(), epsilon=0.1)
            assert (result.matrix.diagonal() > 0).all()

    def test_max_pushes_cap(self):
        graph = _sbm(150, seed=8)
        with pytest.raises(SimRankError):
            localpush_simrank_vectorized(graph, epsilon=0.01, max_pushes=5)

    def test_invalid_parameters(self, tiny_graph):
        with pytest.raises(SimRankError):
            localpush_simrank_vectorized(tiny_graph, epsilon=0.0)
        with pytest.raises(SimRankError):
            localpush_simrank_vectorized(tiny_graph, decay=1.0)

    def test_metadata(self):
        graph = _sbm(150, seed=9)
        result = localpush_simrank_vectorized(graph, epsilon=0.1)
        assert result.backend == "vectorized"
        assert result.num_rounds is not None and result.num_rounds > 0
        assert result.num_pushes > 0
        assert result.elapsed_seconds >= 0.0


class TestLargeEpsilonDiagonal:
    """Regression: ε ≥ 1/(1−c) used to return a matrix with no entries."""

    @pytest.mark.parametrize("backend", ["dict", "vectorized"])
    def test_diagonal_survives_suppressed_pushes(self, backend):
        graph = _erdos_renyi(30, 0.15, seed=10)
        # decay 0.6 → threshold = 0.4·ε ≥ 1 once ε ≥ 2.5.
        result = localpush_simrank(graph, epsilon=3.0, backend=backend)
        diagonal = result.matrix.diagonal()
        assert (diagonal > 0).all()

    @pytest.mark.parametrize("backend", ["dict", "vectorized"])
    def test_diagonal_survives_without_prune(self, backend):
        graph = _star(5)
        result = localpush_simrank(graph, epsilon=10.0, prune=False,
                                   backend=backend)
        assert (result.matrix.diagonal() > 0).all()


class TestTopKDiagonalRegression:
    """Regression: keep_diagonal used to retain k + 1 entries per row."""

    def test_rows_have_at_most_k_entries(self):
        rng = np.random.default_rng(0)
        dense = rng.random((30, 30))
        pruned = top_k_per_row(sp.csr_matrix(dense), 5, keep_diagonal=True)
        per_row = np.diff(pruned.indptr)
        assert per_row.max() <= 5
        assert (pruned.diagonal() > 0).all()

    def test_diagonal_evicts_smallest_kept_entry(self):
        row = np.array([[0.01, 0.5, 0.4, 0.3]])
        pruned = top_k_per_row(sp.csr_matrix(row), 2, keep_diagonal=True)
        dense = pruned.toarray()[0]
        # Diagonal (0.01) replaces the smallest of the top-2 (0.4).
        np.testing.assert_allclose(dense, [0.01, 0.5, 0.0, 0.0])

    def test_diagonal_already_in_topk_is_not_duplicated(self):
        row = np.array([[0.9, 0.5, 0.1, 0.2]])
        pruned = top_k_per_row(sp.csr_matrix(row), 2, keep_diagonal=True)
        assert pruned.nnz == 2
        np.testing.assert_allclose(pruned.toarray()[0], [0.9, 0.5, 0.0, 0.0])

    def test_tie_break_prefers_smaller_column(self):
        row = np.array([[0.0, 0.5, 0.5, 0.5]])
        pruned = top_k_per_row(sp.csr_matrix(row), 2)
        np.testing.assert_allclose(pruned.toarray()[0], [0.0, 0.5, 0.5, 0.0])

    def test_operator_rows_bounded_with_positive_diagonal(self):
        graph = _sbm(150, seed=11)
        from repro.config import SimRankConfig
        from repro.simrank.topk import simrank_operator

        operator = simrank_operator(graph, config=SimRankConfig(
            method="localpush", epsilon=0.1, top_k=4, backend="vectorized"))
        per_row = np.diff(operator.matrix.indptr)
        assert per_row.max() <= 4
        assert (operator.matrix.diagonal() > 0).all()


class TestSigmoidStability:
    """Regression: naive 1/(1+exp(-x)) overflowed for large negative logits."""

    def test_extreme_logits_do_not_overflow(self):
        with np.errstate(over="raise", under="ignore"):
            assert _sigmoid(-1000.0) == pytest.approx(0.0)
            assert _sigmoid(1000.0) == pytest.approx(1.0)

    def test_matches_naive_form_in_stable_range(self):
        for value in np.linspace(-30, 30, 13):
            expected = 1.0 / (1.0 + np.exp(-value))
            assert _sigmoid(float(value)) == pytest.approx(expected, rel=1e-12)

    def test_symmetry(self):
        for value in (-7.3, -0.5, 0.0, 2.2):
            assert _sigmoid(value) + _sigmoid(-value) == pytest.approx(1.0)
