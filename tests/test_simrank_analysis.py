"""Tests for the intra/inter-class SimRank analysis (Table II / Fig. 2)."""

import numpy as np
import pytest

from repro.errors import SimRankError
from repro.graphs.graph import Graph
from repro.simrank.analysis import simrank_class_statistics
from repro.simrank.exact import exact_simrank


class TestSimRankClassStatistics:
    def test_requires_labels(self):
        graph = Graph.from_edges(4, [(0, 1), (2, 3)])
        with pytest.raises(SimRankError):
            simrank_class_statistics(graph, np.eye(4))

    def test_all_pairs_used_for_small_graphs(self, tiny_graph):
        scores = exact_simrank(tiny_graph)
        stats = simrank_class_statistics(tiny_graph, scores, num_pairs=10_000)
        assert stats.num_intra_pairs + stats.num_inter_pairs == 6 * 5 // 2

    def test_sampling_for_larger_request(self, small_heterophilous_graph):
        scores = exact_simrank(small_heterophilous_graph, num_iterations=5)
        stats = simrank_class_statistics(small_heterophilous_graph, scores, num_pairs=500)
        assert stats.num_intra_pairs + stats.num_inter_pairs <= 500

    def test_sparse_and_dense_inputs_agree(self, tiny_graph):
        import scipy.sparse as sp

        scores = exact_simrank(tiny_graph)
        dense_stats = simrank_class_statistics(tiny_graph, scores, seed=3)
        sparse_stats = simrank_class_statistics(tiny_graph, sp.csr_matrix(scores), seed=3)
        assert dense_stats.intra_mean == pytest.approx(sparse_stats.intra_mean)
        assert dense_stats.inter_mean == pytest.approx(sparse_stats.inter_mean)

    def test_heterophilous_graph_shows_positive_separation(self, small_heterophilous_graph):
        """The paper's Table II claim on a synthetic heterophilous graph."""
        scores = exact_simrank(small_heterophilous_graph)
        stats = simrank_class_statistics(small_heterophilous_graph, scores,
                                         num_pairs=8000, seed=0)
        assert stats.separation > 0.0

    def test_histogram_shapes(self, tiny_graph):
        scores = exact_simrank(tiny_graph)
        stats = simrank_class_statistics(tiny_graph, scores)
        histogram = stats.histogram(bins=10)
        centres, density = histogram["intra"]
        assert centres.shape == (10,)
        assert density.shape == (10,)

    def test_exclude_zero_option(self, small_heterophilous_graph):
        scores = np.zeros((small_heterophilous_graph.num_nodes,) * 2)
        stats = simrank_class_statistics(small_heterophilous_graph, scores,
                                         num_pairs=100, exclude_zero=True)
        assert stats.num_intra_pairs == 0
        assert stats.num_inter_pairs == 0
