"""Suite for single-source / single-pair LocalPush (the query engine).

Pins the tentpole guarantee of ``multi_source_localpush``: the returned
row is **bit-identical** to the same row of the all-pairs
``localpush_engine`` matrix under the same parameters — for every
executor and worker count, streamed top-k included — while touching only
the sources' connected components.  Also pins the Lemma III.5
``(1-c)·ε`` error bound on the query rows against the linearized-SimRank
series reference, on weighted and disconnected graphs.

Sharding note: on *disconnected* graphs a forced multi-shard geometry
can split the all-pairs frontier differently from the component-restricted
one, leaving only float-round-off agreement; the equivalence suite
therefore forces ``num_shards`` only on connected fixtures and uses the
default geometry (single-shard at these sizes) on the disconnected ones,
exactly as the engine docstring guarantees.
"""

import numpy as np
import pytest
import scipy.sparse as sp

from _simrank_fixtures import (
    disconnected as _disconnected,
    erdos_renyi as _erdos_renyi,
    sbm as _sbm,
    star as _star,
    weighted as _weighted,
    with_isolated as _with_isolated,
)
from repro.errors import SimRankError
from repro.graphs.sparse import top_k_per_row
from repro.simrank.engine import (
    EXECUTORS,
    SingleSourceResult,
    component_nodes,
    localpush_engine,
    multi_source_localpush,
    single_pair_localpush,
    single_source_localpush,
)
from repro.simrank.exact import linearized_simrank


def _assert_row_identical(a: sp.csr_matrix, b: sp.csr_matrix) -> None:
    assert np.array_equal(a.indptr, b.indptr)
    assert np.array_equal(a.indices, b.indices)
    assert np.array_equal(a.data, b.data)  # bitwise, no tolerance


#: (fixture, sources, forced num_shards or None).  Forced shard counts
#: only on connected graphs — see the module docstring.
ROW_EQUIVALENCE_CASES = [
    pytest.param(lambda: _erdos_renyi(60, 0.08, seed=0), (0, 17, 59), 4,
                 id="erdos-renyi-60-sharded"),
    pytest.param(lambda: _sbm(150, seed=2), (3, 75, 149), 3,
                 id="sbm-150-sharded"),
    pytest.param(lambda: _weighted(40, seed=12), (1, 20, 39), None,
                 id="weighted-40"),
    pytest.param(lambda: _star(12), (0, 5, 12), None, id="star-12"),
    pytest.param(_disconnected, (0, 35, 52), None, id="disconnected"),
    pytest.param(_with_isolated, (2, 41, 44), None, id="er+isolated"),
]


class TestRowEquivalence:
    """Single-source rows == all-pairs rows, bitwise, per executor."""

    @pytest.mark.parametrize("make_graph,sources,num_shards",
                             ROW_EQUIVALENCE_CASES)
    @pytest.mark.parametrize("executor", sorted(EXECUTORS))
    def test_rows_bit_identical_to_all_pairs(self, make_graph, sources,
                                             num_shards, executor):
        graph = make_graph()
        workers = 2 if executor != "serial" else None
        kwargs = dict(epsilon=0.1, prune=False, absorb_residual=True,
                      executor=executor, num_workers=workers,
                      num_shards=num_shards)
        full = localpush_engine(graph, **kwargs)
        results = multi_source_localpush(graph, sources, **kwargs)
        for source, result in zip(sources, results):
            assert result.source == source
            _assert_row_identical(result.row, full.matrix.getrow(source))

    @pytest.mark.parametrize("workers", [1, 3])
    def test_worker_count_does_not_change_the_row(self, workers):
        graph = _sbm(150, seed=6)
        reference = single_source_localpush(graph, 42, epsilon=0.1,
                                            prune=False, executor="process",
                                            num_workers=2, num_shards=4)
        other = single_source_localpush(graph, 42, epsilon=0.1, prune=False,
                                        executor="process",
                                        num_workers=workers, num_shards=4)
        _assert_row_identical(reference.row, other.row)

    def test_pruned_row_matches_all_pairs_pruned(self):
        graph = _erdos_renyi(60, 0.08, seed=0)
        kwargs = dict(epsilon=0.1, prune=True, absorb_residual=True)
        full = localpush_engine(graph, **kwargs)
        result = single_source_localpush(graph, 7, **kwargs)
        _assert_row_identical(result.row, full.matrix.getrow(7))

    def test_topk_row_matches_posthoc_topk(self):
        """``top_k=`` equals pruning the full row after the fact."""
        graph = _sbm(150, seed=2)
        kwargs = dict(epsilon=0.1, prune=False, absorb_residual=True)
        full = localpush_engine(graph, **kwargs)
        capped = single_source_localpush(graph, 30, top_k=5, **kwargs)
        expected = top_k_per_row(full.matrix, 5, keep_diagonal=True)
        _assert_row_identical(capped.row, expected.getrow(30))
        assert capped.row.nnz <= 6  # k entries + the kept diagonal

    def test_batch_equals_solo(self):
        graph = _weighted(40, seed=12)
        sources = (5, 11, 38)
        kwargs = dict(epsilon=0.1, prune=False, absorb_residual=True)
        batched = multi_source_localpush(graph, sources, **kwargs)
        for source, result in zip(sources, batched):
            solo = single_source_localpush(graph, source, **kwargs)
            _assert_row_identical(result.row, solo.row)
            assert result.batch_size == len(sources)
            assert solo.batch_size == 1

    def test_duplicate_sources_share_one_row(self):
        graph = _star(12)
        results = multi_source_localpush(graph, (4, 4), epsilon=0.1)
        assert results[0].row is results[1].row

    def test_pair_matches_row_entry(self):
        graph = _erdos_renyi(60, 0.08, seed=0)
        row = single_source_localpush(graph, 9, epsilon=0.1, prune=False,
                                      absorb_residual=True).row
        value = single_pair_localpush(graph, 9, 23, epsilon=0.1, prune=False,
                                      absorb_residual=True)
        assert value == float(row[0, 23])  # bitwise

    def test_cross_component_pair_is_exactly_zero(self):
        graph = _disconnected()  # components [0,30), [30,50), isolated tail
        assert single_pair_localpush(graph, 3, 41, epsilon=0.1) == 0.0
        assert single_pair_localpush(graph, 52, 0, epsilon=0.1) == 0.0


class TestErrorBound:
    """Lemma III.5 on query rows: ‖row − S_ref[source]‖_max < ε."""

    @pytest.mark.parametrize("epsilon", [0.3, 0.1, 0.05])
    @pytest.mark.parametrize("make_graph,sources", [
        pytest.param(lambda: _weighted(40, seed=12), (1, 20, 39),
                     id="weighted-40"),
        pytest.param(_disconnected, (0, 35, 52), id="disconnected"),
    ])
    def test_row_error_bound(self, make_graph, sources, epsilon):
        graph = make_graph()
        reference = linearized_simrank(graph, num_iterations=40)
        results = multi_source_localpush(graph, sources, epsilon=epsilon,
                                         prune=False)
        for source, result in zip(sources, results):
            row = np.asarray(result.row.todense()).ravel()
            assert np.abs(row - reference[source]).max() < epsilon
            assert result.epsilon == epsilon

    def test_smaller_epsilon_is_more_accurate(self):
        graph = _weighted(40, seed=12)
        reference = linearized_simrank(graph, num_iterations=40)[20]
        errors = []
        for epsilon in (0.3, 0.05):
            row = single_source_localpush(graph, 20, epsilon=epsilon,
                                          prune=False).row
            errors.append(np.abs(
                np.asarray(row.todense()).ravel() - reference).max())
        assert errors[1] <= errors[0] + 1e-12


class TestQueryLocality:
    """The query touches only the sources' components — O(query), not O(n²)."""

    def test_component_nodes_restricts_to_the_sources(self):
        graph = _disconnected()
        first = component_nodes(graph, [3])
        assert np.array_equal(first, np.arange(30))
        both = component_nodes(graph, [3, 31])
        assert np.array_equal(both, np.arange(50))
        isolated = component_nodes(graph, [52])
        assert np.array_equal(isolated, np.array([52]))

    def test_component_size_metadata(self):
        graph = _disconnected()
        result = single_source_localpush(graph, 35, epsilon=0.1)
        assert result.component_size == 20
        assert result.row.shape == (1, graph.num_nodes)

    def test_row_support_stays_inside_the_component(self):
        graph = _disconnected()
        result = single_source_localpush(graph, 3, epsilon=0.05, prune=False,
                                         absorb_residual=True)
        assert result.row.nnz > 0
        assert result.row.indices.max() < 30

    def test_query_pushes_fewer_than_all_pairs(self):
        graph = _disconnected()
        full = localpush_engine(graph, epsilon=0.05, prune=False)
        query = single_source_localpush(graph, 35, epsilon=0.05, prune=False)
        assert query.num_pushes < full.num_pushes

    def test_isolated_source_row_is_the_unit_vector(self):
        graph = _with_isolated()
        result = single_source_localpush(graph, 42, epsilon=0.1)
        assert result.component_size == 1
        assert result.row.nnz == 1
        assert float(result.row[0, 42]) == 1.0


class TestValidation:
    def test_out_of_range_source_rejected(self, tiny_graph):
        with pytest.raises(SimRankError):
            single_source_localpush(tiny_graph, tiny_graph.num_nodes,
                                    epsilon=0.1)
        with pytest.raises(SimRankError):
            single_source_localpush(tiny_graph, -1, epsilon=0.1)
        with pytest.raises(SimRankError):
            single_pair_localpush(tiny_graph, 0, tiny_graph.num_nodes,
                                  epsilon=0.1)

    def test_empty_sources_rejected(self, tiny_graph):
        with pytest.raises(SimRankError):
            multi_source_localpush(tiny_graph, [], epsilon=0.1)

    def test_max_pushes_cap_raises(self):
        graph = _sbm(150, seed=2)
        with pytest.raises(SimRankError):
            single_source_localpush(graph, 0, epsilon=0.01, max_pushes=1)

    def test_result_metadata(self):
        graph = _sbm(150, seed=2)
        result = single_source_localpush(graph, 10, epsilon=0.1,
                                         executor="thread", num_workers=2)
        assert isinstance(result, SingleSourceResult)
        assert result.executor == "thread"
        assert result.num_workers == 2
        assert result.decay == 0.6
        assert result.num_rounds > 0
        assert result.nnz == result.row.nnz
