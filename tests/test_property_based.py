"""Property-based tests (hypothesis) for core data structures and invariants."""

import numpy as np
import pytest
import scipy.sparse as sp
from hypothesis import given, settings, strategies as st
from hypothesis.extra import numpy as hnp

from repro.datasets.splits import stratified_splits
from repro.graphs.graph import Graph
from repro.graphs.homophily import edge_homophily, node_homophily
from repro.graphs.normalize import row_normalize, symmetric_normalize
from repro.graphs.sparse import top_k_per_row
from repro.nn.losses import softmax, softmax_cross_entropy
from repro.simrank.exact import linearized_simrank
from repro.simrank.localpush import localpush_simrank
from repro.simrank.pairwise_walk import homophily_probability
from repro.simrank.sharded import localpush_simrank_sharded

# The sharded properties deliberately pin the deprecated shim's behaviour.
# Exempt exactly its own warning; any other DeprecationWarning is still an
# error under the tier-1 blanket filter.
pytestmark = pytest.mark.filterwarnings(
    "default:localpush_simrank_sharded is deprecated:DeprecationWarning")

SETTINGS = settings(max_examples=25, deadline=None)


# --------------------------------------------------------------------------- #
# Strategies
# --------------------------------------------------------------------------- #
@st.composite
def random_graphs(draw, min_nodes=3, max_nodes=20):
    """Random connected-ish undirected graphs with labels."""
    num_nodes = draw(st.integers(min_nodes, max_nodes))
    # A random spanning chain keeps every node non-isolated, plus extra edges.
    chain = [(i, i + 1) for i in range(num_nodes - 1)]
    extra_count = draw(st.integers(0, num_nodes * 2))
    extra = [
        (draw(st.integers(0, num_nodes - 1)), draw(st.integers(0, num_nodes - 1)))
        for _ in range(extra_count)
    ]
    edges = [edge for edge in chain + extra if edge[0] != edge[1]]
    labels = np.array([draw(st.integers(0, 2)) for _ in range(num_nodes)])
    # Guarantee at least two classes so homophily is well defined but not trivial.
    labels[0] = 0
    if num_nodes > 1:
        labels[1] = 1
    features = np.eye(num_nodes)
    return Graph.from_edges(num_nodes, edges, labels=labels, features=features)


# --------------------------------------------------------------------------- #
# Graph invariants
# --------------------------------------------------------------------------- #
class TestGraphProperties:
    @SETTINGS
    @given(random_graphs())
    def test_adjacency_symmetric_and_degrees_match(self, graph):
        assert (graph.adjacency != graph.adjacency.T).nnz == 0
        assert graph.degrees.sum() == graph.num_directed_edges

    @SETTINGS
    @given(random_graphs())
    def test_homophily_measures_in_unit_interval(self, graph):
        assert 0.0 <= node_homophily(graph) <= 1.0
        assert 0.0 <= edge_homophily(graph) <= 1.0

    @SETTINGS
    @given(random_graphs())
    def test_uniform_labels_give_perfect_homophily(self, graph):
        uniform = graph.with_labels(np.zeros(graph.num_nodes, dtype=int))
        assert node_homophily(uniform) == 1.0
        assert edge_homophily(uniform) == 1.0

    @SETTINGS
    @given(random_graphs())
    def test_row_normalize_rows_are_stochastic(self, graph):
        normalized = row_normalize(graph.adjacency)
        sums = np.asarray(normalized.sum(axis=1)).ravel()
        degrees = graph.degrees
        np.testing.assert_allclose(sums[degrees > 0], 1.0)

    @SETTINGS
    @given(random_graphs())
    def test_symmetric_normalize_spectral_radius(self, graph):
        normalized = symmetric_normalize(graph.adjacency).toarray()
        eigenvalues = np.linalg.eigvalsh(normalized)
        assert eigenvalues.max() <= 1.0 + 1e-8


# --------------------------------------------------------------------------- #
# SimRank invariants
# --------------------------------------------------------------------------- #
class TestSimRankProperties:
    @SETTINGS
    @given(random_graphs(max_nodes=14), st.floats(0.2, 0.8))
    def test_linearized_simrank_symmetric_nonnegative(self, graph, decay):
        scores = linearized_simrank(graph, decay=decay, num_iterations=8)
        np.testing.assert_allclose(scores, scores.T, atol=1e-10)
        assert scores.min() >= -1e-12

    @SETTINGS
    @given(random_graphs(max_nodes=12), st.sampled_from([0.3, 0.15, 0.05]))
    def test_localpush_error_bound_property(self, graph, epsilon):
        """Lemma III.5 holds on arbitrary random graphs."""
        reference = linearized_simrank(graph, num_iterations=40)
        approx = localpush_simrank(graph, epsilon=epsilon, prune=False).matrix.toarray()
        assert np.abs(approx - reference).max() < epsilon

    @SETTINGS
    @given(random_graphs(max_nodes=12), st.sampled_from([0.3, 0.1]))
    def test_sharded_backend_error_bound_property(self, graph, epsilon):
        """Lemma III.5 holds for the sharded engine on arbitrary graphs."""
        reference = linearized_simrank(graph, num_iterations=40)
        approx = localpush_simrank_sharded(graph, epsilon=epsilon,
                                           prune=False).matrix.toarray()
        assert np.abs(approx - reference).max() < epsilon

    @SETTINGS
    @given(st.floats(0.0, 1.0), st.integers(0, 10))
    def test_homophily_probability_in_unit_interval(self, p, length):
        value = homophily_probability(p, length)
        assert 0.0 <= value <= 1.0

    @SETTINGS
    @given(st.floats(0.5, 1.0), st.integers(1, 8))
    def test_homophily_probability_monotone_in_p_above_half(self, p, length):
        """Corollary III.3: for p > 0.5 the probability grows with p."""
        higher = min(1.0, p + 0.05)
        assert homophily_probability(higher, length) >= homophily_probability(p, length) - 1e-12


# --------------------------------------------------------------------------- #
# Single-source query invariants
# --------------------------------------------------------------------------- #
class TestSingleSourceProperties:
    """Query-layer invariants: score/topk coherence, batch == sequential.

    The ``random_graphs`` strategy builds connected graphs (a spanning
    chain underlies every draw), so the engine's bit-identical batch
    guarantee applies unconditionally here.
    """

    @SETTINGS
    @given(random_graphs(max_nodes=12), st.data())
    def test_score_equals_the_topk_entry(self, graph, data):
        from repro.api import score, topk

        u = data.draw(st.integers(0, graph.num_nodes - 1))
        v = data.draw(st.integers(0, graph.num_nodes - 1))
        entries = dict(topk(graph, u, graph.num_nodes))
        assert score(graph, u, v) == entries.get(v, 0.0)  # bitwise

    @SETTINGS
    @given(random_graphs(max_nodes=14), st.data())
    def test_batched_rows_equal_sequential_rows(self, graph, data):
        from repro.simrank.engine import (
            multi_source_localpush,
            single_source_localpush,
        )

        sources = data.draw(st.lists(
            st.integers(0, graph.num_nodes - 1), min_size=1, max_size=4))
        batched = multi_source_localpush(graph, sources, epsilon=0.1,
                                         prune=False, absorb_residual=True)
        for source, result in zip(sources, batched):
            solo = single_source_localpush(graph, source, epsilon=0.1,
                                           prune=False, absorb_residual=True)
            assert np.array_equal(result.row.indptr, solo.row.indptr)
            assert np.array_equal(result.row.indices, solo.row.indices)
            assert np.array_equal(result.row.data, solo.row.data)

    @SETTINGS
    @given(random_graphs(max_nodes=12), st.sampled_from([0.3, 0.1]),
           st.data())
    def test_single_source_row_error_bound(self, graph, epsilon, data):
        from repro.simrank.engine import single_source_localpush

        source = data.draw(st.integers(0, graph.num_nodes - 1))
        reference = linearized_simrank(graph, num_iterations=40)[source]
        row = single_source_localpush(graph, source, epsilon=epsilon,
                                      prune=False).row
        assert np.abs(
            np.asarray(row.todense()).ravel() - reference).max() < epsilon


# --------------------------------------------------------------------------- #
# Sparse helpers
# --------------------------------------------------------------------------- #
class TestTopKProperties:
    @SETTINGS
    @given(
        hnp.arrays(np.float64, (8, 8), elements=st.floats(0.0, 1.0)),
        st.integers(1, 8),
    )
    def test_topk_keeps_subset_of_entries(self, dense, k):
        matrix = sp.csr_matrix(dense)
        pruned = top_k_per_row(matrix, k)
        assert pruned.nnz <= matrix.nnz
        assert (np.diff(pruned.indptr) <= k).all()
        difference = (matrix - pruned).toarray()
        assert difference.min() >= -1e-12  # pruning never adds or increases entries

    @SETTINGS
    @given(
        hnp.arrays(np.float64, (6, 6), elements=st.floats(0.0, 1.0)),
        st.integers(1, 6),
    )
    def test_topk_keeps_row_maximum(self, dense, k):
        matrix = sp.csr_matrix(dense)
        pruned = top_k_per_row(matrix, k).toarray()
        for row in range(dense.shape[0]):
            if matrix[row].nnz == 0:
                continue
            assert pruned[row].max() == dense[row].max()


# --------------------------------------------------------------------------- #
# Streaming top-k pruning invariants (sharded LocalPush engine)
# --------------------------------------------------------------------------- #
class TestStreamingTopKProperties:
    """Invariants of the in-loop top-k prune of the sharded engine.

    The engine may drop an estimate entry mid-run only when its value plus
    the residual correction bound ``‖R‖_max / (1 − c)`` is strictly below
    the row's current k-th largest score — so no entry whose true final
    score exceeds the retained k-th score (plus that bound) is ever lost,
    and the streamed result must equal pruning the full estimate post hoc.
    """

    @SETTINGS
    @given(random_graphs(max_nodes=16), st.integers(2, 6),
           st.sampled_from([0.3, 0.1]))
    def test_streaming_never_drops_a_final_topk_entry(self, graph, k, epsilon):
        full = localpush_simrank_sharded(graph, epsilon=epsilon, prune=False,
                                         absorb_residual=True)
        streamed = localpush_simrank_sharded(graph, epsilon=epsilon,
                                             prune=False, absorb_residual=True,
                                             stream_top_k=k)
        dense_full = full.matrix.toarray()
        dense_streamed = streamed.matrix.toarray()
        for row in range(graph.num_nodes):
            retained = dense_streamed[row][dense_streamed[row] > 0]
            if retained.size == 0:
                continue
            kth_retained = np.sort(retained)[-min(k, retained.size)]
            dropped = (dense_full[row] > 0) & (dense_streamed[row] == 0)
            # A dropped entry's true score never exceeds the retained k-th
            # score: the correction bound made the drop provably safe.
            if dropped.any():
                assert dense_full[row][dropped].max() <= kth_retained + 1e-9

    @SETTINGS
    @given(random_graphs(max_nodes=16), st.integers(2, 6),
           st.sampled_from([0.3, 0.1]))
    def test_streaming_equals_posthoc_topk(self, graph, k, epsilon):
        full = localpush_simrank_sharded(graph, epsilon=epsilon, prune=False,
                                         absorb_residual=True)
        streamed = localpush_simrank_sharded(graph, epsilon=epsilon,
                                             prune=False, absorb_residual=True,
                                             stream_top_k=k)
        expected = top_k_per_row(full.matrix, k, keep_diagonal=True)
        np.testing.assert_allclose(streamed.matrix.toarray(),
                                   expected.toarray(), rtol=0, atol=1e-12)

    @SETTINGS
    @given(random_graphs(max_nodes=16), st.integers(1, 5))
    def test_streaming_respects_row_budget_and_diagonal(self, graph, k):
        streamed = localpush_simrank_sharded(graph, epsilon=0.1, prune=False,
                                             absorb_residual=True,
                                             stream_top_k=k)
        assert np.diff(streamed.matrix.indptr).max() <= k
        assert (streamed.matrix.diagonal() > 0).all()


# --------------------------------------------------------------------------- #
# Loss and split invariants
# --------------------------------------------------------------------------- #
class TestLossProperties:
    @SETTINGS
    @given(hnp.arrays(np.float64, (5, 4), elements=st.floats(-10, 10)))
    def test_softmax_rows_are_distributions(self, logits):
        probabilities = softmax(logits, axis=1)
        np.testing.assert_allclose(probabilities.sum(axis=1), 1.0, atol=1e-9)
        assert probabilities.min() >= 0.0

    @SETTINGS
    @given(hnp.arrays(np.float64, (6, 3), elements=st.floats(-5, 5)),
           st.lists(st.integers(0, 2), min_size=6, max_size=6))
    def test_cross_entropy_nonnegative(self, logits, labels):
        loss, grad = softmax_cross_entropy(logits, np.array(labels))
        assert loss >= 0.0
        # Gradient rows sum to zero (softmax minus one-hot).
        np.testing.assert_allclose(grad.sum(axis=1), 0.0, atol=1e-9)


class TestSplitProperties:
    @SETTINGS
    @given(st.integers(2, 5), st.integers(10, 40), st.integers(0, 1000))
    def test_stratified_splits_partition_nodes(self, num_classes, per_class, seed):
        labels = np.repeat(np.arange(num_classes), per_class)
        split = stratified_splits(labels, num_splits=1, seed=seed)[0]
        union = np.concatenate([split.train, split.val, split.test])
        assert np.array_equal(np.sort(union), np.arange(labels.size))
        assert set(labels[split.train]) == set(range(num_classes))


# --------------------------------------------------------------------------- #
# Dynamic maintenance invariants
# --------------------------------------------------------------------------- #
class TestDynamicProperties:
    @SETTINGS
    @given(random_graphs(min_nodes=4, max_nodes=12), st.data())
    def test_random_update_stream_stays_in_bound(self, graph, data):
        """Interleaved updates and queries stay within the ε bound.

        A random stream of valid inserts/deletes/reweights is applied
        through one :class:`DynamicOperator`; after every repair the
        maintained estimate must still be within ``epsilon`` of the
        dense oracle on the *current* graph, exactly as a fresh
        recompute would be.
        """
        from repro.config import SimRankConfig
        from repro.dynamic import DynamicOperator
        from repro.graphs.delta import GraphDelta

        epsilon = 0.1
        operator = DynamicOperator(
            graph, simrank=SimRankConfig(method="localpush", epsilon=epsilon))
        num_updates = data.draw(st.integers(1, 4), label="num_updates")
        for _ in range(num_updates):
            current = operator.graph
            n = current.num_nodes
            dense = current.adjacency.toarray()
            present = [(u, v) for u in range(n) for v in range(u + 1, n)
                       if dense[u, v] != 0.0]
            absent = [(u, v) for u in range(n) for v in range(u + 1, n)
                      if dense[u, v] == 0.0]
            kinds = ["reweight", "delete"] if present else []
            if absent:
                kinds.append("insert")
            kind = data.draw(st.sampled_from(kinds), label="kind")
            pairs = absent if kind == "insert" else present
            u, v = data.draw(st.sampled_from(pairs), label="pair")
            if kind == "reweight":
                weight = data.draw(st.floats(0.25, 4.0), label="weight")
                delta = GraphDelta(kind, u, v, weight=weight)
            elif kind == "insert":
                delta = GraphDelta(kind, u, v)
            else:
                delta = GraphDelta(kind, u, v)
            operator.apply(delta)
            # Query path: the served snapshot against the dense oracle.
            reference = linearized_simrank(operator.graph,
                                           num_iterations=60)
            snapshot = operator.operator().matrix.toarray()
            assert np.abs(snapshot - reference).max() < epsilon
            assert (operator.residual_max
                    <= operator.push_threshold * (1 + 1e-12))
