"""Behavioural tests shared by every model in the registry."""

import numpy as np
import pytest

from repro.config import SimRankConfig
from repro.models.registry import create_model, default_hyperparameters, list_models
from repro.nn.losses import softmax_cross_entropy

ALL_MODELS = list_models()

# Small hyper-parameters so every model builds and trains quickly in tests.
FAST_OVERRIDES = {
    "mlp": {"hidden": 16},
    "gcn": {"hidden": 16},
    "sgc": {},
    "gat": {"hidden": 4, "num_heads": 2},
    "appnp": {"hidden": 16, "num_steps": 4},
    "mixhop": {"hidden": 8},
    "gcnii": {"hidden": 16, "num_layers": 3},
    "gprgnn": {"hidden": 16, "num_steps": 4},
    "h2gcn": {"hidden": 16},
    "acmgcn": {"hidden": 16},
    "linkx": {"hidden": 16},
    "glognn": {"hidden": 16, "k_hops": 2, "norm_layers": 1},
    "pprgo": {"hidden": 16, "top_k": 8},
    "sigma": {"hidden": 16, "simrank": SimRankConfig(top_k=8)},
    "sigma_iterative": {"hidden": 16, "simrank": SimRankConfig(top_k=8)},
}


def _build(name, graph, seed=0):
    return create_model(name, graph, rng=seed, **FAST_OVERRIDES[name])


@pytest.mark.parametrize("model_name", ALL_MODELS)
class TestModelContract:
    def test_forward_shape(self, model_name, small_heterophilous_graph):
        model = _build(model_name, small_heterophilous_graph)
        logits = model.forward()
        assert logits.shape == (small_heterophilous_graph.num_nodes,
                                small_heterophilous_graph.num_classes)
        assert np.isfinite(logits).all()

    def test_backward_populates_gradients(self, model_name, small_heterophilous_graph):
        graph = small_heterophilous_graph
        model = _build(model_name, graph)
        model.zero_grad()
        logits = model.forward()
        _, grad = softmax_cross_entropy(logits, graph.labels)
        model.backward(grad)
        grads = [np.abs(param.grad).sum() for param in model.parameters()]
        assert sum(grads) > 0.0

    def test_training_reduces_loss(self, model_name, small_heterophilous_graph):
        from repro.nn.optim import Adam

        graph = small_heterophilous_graph
        model = _build(model_name, graph)
        optimizer = Adam(model.parameters(), lr=0.01)
        initial_loss, _ = model.loss_and_grad()
        for _ in range(25):
            optimizer.zero_grad()
            _, grad = model.loss_and_grad()
            model.backward(grad)
            optimizer.step()
        final_loss, _ = model.loss_and_grad()
        assert final_loss < initial_loss

    def test_predictions_in_label_range(self, model_name, small_heterophilous_graph):
        model = _build(model_name, small_heterophilous_graph)
        predictions = model.predict()
        assert predictions.shape == (small_heterophilous_graph.num_nodes,)
        assert predictions.min() >= 0
        assert predictions.max() < small_heterophilous_graph.num_classes

    def test_predict_proba_rows_sum_to_one(self, model_name, small_heterophilous_graph):
        model = _build(model_name, small_heterophilous_graph)
        proba = model.predict_proba()
        np.testing.assert_allclose(proba.sum(axis=1), 1.0, atol=1e-9)

    def test_accuracy_bounds(self, model_name, small_heterophilous_graph):
        model = _build(model_name, small_heterophilous_graph)
        assert 0.0 <= model.accuracy() <= 1.0

    def test_deterministic_given_seed(self, model_name, small_heterophilous_graph):
        graph = small_heterophilous_graph
        first = _build(model_name, graph, seed=7)
        second = _build(model_name, graph, seed=7)
        first.eval()
        second.eval()
        np.testing.assert_allclose(first.forward(), second.forward())

    def test_default_hyperparameters_exist(self, model_name, small_heterophilous_graph):
        defaults = default_hyperparameters(model_name)
        assert isinstance(defaults, dict)
