"""Tests for the optimisers."""

import numpy as np
import pytest

from repro.nn.module import Parameter
from repro.nn.optim import SGD, Adam


def _quadratic_grad(param: Parameter, target: np.ndarray) -> None:
    """Gradient of 0.5‖p − target‖²."""
    param.grad[...] = param.value - target


class TestSGD:
    def test_converges_on_quadratic(self):
        param = Parameter(np.array([5.0, -3.0]))
        target = np.array([1.0, 2.0])
        optimizer = SGD([param], lr=0.1)
        for _ in range(200):
            optimizer.zero_grad()
            _quadratic_grad(param, target)
            optimizer.step()
        np.testing.assert_allclose(param.value, target, atol=1e-4)

    def test_momentum_accelerates(self):
        def run(momentum: float) -> float:
            param = Parameter(np.array([10.0]))
            optimizer = SGD([param], lr=0.01, momentum=momentum)
            for _ in range(50):
                optimizer.zero_grad()
                _quadratic_grad(param, np.array([0.0]))
                optimizer.step()
            return abs(float(param.value[0]))

        assert run(0.9) < run(0.0)

    def test_weight_decay_shrinks_parameters(self):
        param = Parameter(np.array([1.0]))
        optimizer = SGD([param], lr=0.1, weight_decay=0.5)
        optimizer.zero_grad()  # gradient stays zero; only decay acts
        optimizer.step()
        assert abs(float(param.value[0])) < 1.0

    def test_invalid_momentum(self):
        with pytest.raises(ValueError):
            SGD([Parameter(np.zeros(1))], lr=0.1, momentum=1.5)


class TestAdam:
    def test_converges_on_quadratic(self):
        param = Parameter(np.array([5.0, -3.0, 0.5]))
        target = np.array([1.0, 2.0, -1.0])
        optimizer = Adam([param], lr=0.05)
        for _ in range(500):
            optimizer.zero_grad()
            _quadratic_grad(param, target)
            optimizer.step()
        np.testing.assert_allclose(param.value, target, atol=1e-3)

    def test_decoupled_weight_decay(self):
        param = Parameter(np.array([2.0]))
        optimizer = Adam([param], lr=0.0001, weight_decay=0.1)
        optimizer.zero_grad()
        optimizer.step()
        assert float(param.value[0]) < 2.0

    def test_invalid_lr(self):
        with pytest.raises(ValueError):
            Adam([Parameter(np.zeros(1))], lr=0.0)

    def test_invalid_betas(self):
        with pytest.raises(ValueError):
            Adam([Parameter(np.zeros(1))], lr=0.1, betas=(1.2, 0.9))

    def test_requires_parameters(self):
        with pytest.raises(ValueError):
            Adam([], lr=0.1)

    def test_zero_grad_clears_gradients(self):
        param = Parameter(np.ones(3))
        param.grad[...] = 5.0
        optimizer = Adam([param], lr=0.1)
        optimizer.zero_grad()
        np.testing.assert_allclose(param.grad, 0.0)
