"""End-to-end gradient checks for selected models.

The models with the most intricate hand-written backward passes (GAT's edge
softmax, GloGNN's nested aggregation, SIGMA's α path, GCNII's identity
mapping, ACM-GCN's channel mixing) are checked against finite differences of
the full cross-entropy loss on a tiny graph.
"""

import numpy as np
import pytest

from repro.config import SimRankConfig
from repro.models.acmgcn import ACMGCN
from repro.models.gat import GAT
from repro.models.gcnii import GCNII
from repro.models.glognn import GloGNN
from repro.models.h2gcn import H2GCN
from repro.models.mixhop import MixHop
from repro.models.sigma import SIGMA
from repro.nn.losses import softmax_cross_entropy


def _loss(model, labels) -> float:
    logits = model.forward()
    value, _ = softmax_cross_entropy(logits, labels)
    return value


def check_model_gradients(model, labels, *, epsilon: float = 1e-6,
                          tolerance: float = 3e-4, max_checks_per_param: int = 6) -> None:
    """Spot-check analytic parameter gradients against central differences."""
    model.eval()  # disable dropout so the loss is deterministic
    model.zero_grad()
    logits = model.forward()
    _, grad = softmax_cross_entropy(logits, labels)
    model.backward(grad)
    rng = np.random.default_rng(0)
    for param in model.parameters():
        flat_value = param.value.ravel()
        flat_grad = param.grad.ravel()
        indices = rng.choice(flat_value.size,
                             size=min(max_checks_per_param, flat_value.size),
                             replace=False)
        for index in indices:
            original = flat_value[index]
            flat_value[index] = original + epsilon
            plus = _loss(model, labels)
            flat_value[index] = original - epsilon
            minus = _loss(model, labels)
            flat_value[index] = original
            numeric = (plus - minus) / (2 * epsilon)
            assert flat_grad[index] == pytest.approx(numeric, abs=tolerance), (
                f"gradient mismatch for {param.name}[{index}]: "
                f"analytic={flat_grad[index]:.6g} numeric={numeric:.6g}")


@pytest.fixture()
def labels(tiny_graph):
    return tiny_graph.labels


class TestModelGradients:
    def test_gat(self, tiny_graph, labels):
        model = GAT(tiny_graph, hidden=3, num_heads=2, dropout=0.0, rng=0)
        check_model_gradients(model, labels)

    def test_glognn(self, tiny_graph, labels):
        model = GloGNN(tiny_graph, hidden=4, num_layers=2, k_hops=2, norm_layers=2,
                       dropout=0.0, rng=0)
        check_model_gradients(model, labels)

    def test_sigma(self, tiny_graph, labels):
        model = SIGMA(tiny_graph, hidden=4, simrank=SimRankConfig(top_k=4), dropout=0.0, rng=0,
                      learn_alpha=True)
        check_model_gradients(model, labels)

    def test_gcnii(self, tiny_graph, labels):
        model = GCNII(tiny_graph, hidden=4, num_layers=3, dropout=0.0, rng=0)
        check_model_gradients(model, labels)

    def test_acmgcn(self, tiny_graph, labels):
        model = ACMGCN(tiny_graph, hidden=4, num_layers=2, dropout=0.0, rng=0)
        check_model_gradients(model, labels)

    def test_h2gcn(self, tiny_graph, labels):
        model = H2GCN(tiny_graph, hidden=4, num_rounds=2, dropout=0.0, rng=0)
        check_model_gradients(model, labels)

    def test_mixhop(self, tiny_graph, labels):
        model = MixHop(tiny_graph, hidden=4, num_layers=2, dropout=0.0, rng=0)
        check_model_gradients(model, labels)
