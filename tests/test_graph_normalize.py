"""Tests for adjacency normalisation operators."""

import numpy as np
import pytest
import scipy.sparse as sp

from repro.errors import GraphError
from repro.graphs.normalize import (
    add_self_loops,
    column_normalize,
    normalized_adjacency_power,
    row_normalize,
    symmetric_normalize,
)


class TestRowNormalize:
    def test_rows_sum_to_one(self, tiny_graph):
        normalized = row_normalize(tiny_graph.adjacency)
        sums = np.asarray(normalized.sum(axis=1)).ravel()
        np.testing.assert_allclose(sums, 1.0)

    def test_isolated_node_row_is_zero(self):
        adjacency = sp.csr_matrix(np.array([[0, 1, 0], [1, 0, 0], [0, 0, 0]], dtype=float))
        normalized = row_normalize(adjacency)
        assert normalized[2].nnz == 0


class TestColumnNormalize:
    def test_columns_sum_to_one(self, tiny_graph):
        normalized = column_normalize(tiny_graph.adjacency)
        sums = np.asarray(normalized.sum(axis=0)).ravel()
        np.testing.assert_allclose(sums, 1.0)

    def test_matches_row_normalize_transpose(self, tiny_graph):
        # For symmetric A, (D^-1 A)^T == A D^-1.
        left = row_normalize(tiny_graph.adjacency).T.toarray()
        right = column_normalize(tiny_graph.adjacency).toarray()
        np.testing.assert_allclose(left, right)


class TestSymmetricNormalize:
    def test_is_symmetric(self, tiny_graph):
        normalized = symmetric_normalize(tiny_graph.adjacency)
        np.testing.assert_allclose(normalized.toarray(), normalized.T.toarray())

    def test_spectrum_bounded_by_one(self, tiny_graph):
        normalized = symmetric_normalize(tiny_graph.adjacency).toarray()
        eigenvalues = np.linalg.eigvalsh(normalized)
        assert eigenvalues.max() <= 1.0 + 1e-9

    def test_without_self_loops(self, tiny_graph):
        normalized = symmetric_normalize(tiny_graph.adjacency, self_loops=False)
        assert normalized.diagonal().sum() == pytest.approx(0.0)


class TestSelfLoopsAndPowers:
    def test_add_self_loops(self, tiny_graph):
        with_loops = add_self_loops(tiny_graph.adjacency)
        np.testing.assert_allclose(with_loops.diagonal(), 1.0)

    def test_power_zero_is_identity(self, tiny_graph):
        power = normalized_adjacency_power(tiny_graph.adjacency, 0)
        np.testing.assert_allclose(power.toarray(), np.eye(6))

    def test_power_two_matches_square(self, tiny_graph):
        one = normalized_adjacency_power(tiny_graph.adjacency, 1).toarray()
        two = normalized_adjacency_power(tiny_graph.adjacency, 2).toarray()
        np.testing.assert_allclose(two, one @ one)

    def test_negative_power_raises(self, tiny_graph):
        with pytest.raises(GraphError):
            normalized_adjacency_power(tiny_graph.adjacency, -1)
