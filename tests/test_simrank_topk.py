"""Tests for top-k pruning and the SimRank aggregation operator.

``simrank_operator`` is exercised through its supported calling
convention — a :class:`repro.config.SimRankConfig` — while the
deprecated keyword path is covered by the equivalence suite in
``tests/test_config.py``.
"""

import numpy as np
import pytest
import scipy.sparse as sp

from repro.config import SimRankConfig
from repro.errors import ConfigError
from repro.simrank.exact import linearized_simrank
from repro.simrank.topk import simrank_operator, topk_simrank


class TestTopkSimrank:
    def test_keeps_at_most_k_plus_diagonal(self, small_heterophilous_graph):
        scores = linearized_simrank(small_heterophilous_graph, num_iterations=6)
        pruned = topk_simrank(scores, 8)
        row_counts = np.diff(pruned.indptr)
        assert (row_counts <= 9).all()  # k entries plus possibly the diagonal

    def test_diagonal_survives(self, small_heterophilous_graph):
        scores = linearized_simrank(small_heterophilous_graph, num_iterations=6)
        pruned = topk_simrank(scores, 4)
        assert (pruned.diagonal() > 0).all()

    def test_accepts_dense_and_sparse(self, tiny_graph):
        dense = linearized_simrank(tiny_graph)
        from_dense = topk_simrank(dense, 3).toarray()
        from_sparse = topk_simrank(sp.csr_matrix(dense), 3).toarray()
        np.testing.assert_allclose(from_dense, from_sparse)


class TestSimRankOperator:
    def test_auto_uses_series_for_small_graphs(self, small_heterophilous_graph):
        operator = simrank_operator(small_heterophilous_graph,
                                    SimRankConfig(top_k=16))
        assert operator.method == "series"

    def test_auto_uses_localpush_for_large_graphs(self, small_heterophilous_graph):
        operator = simrank_operator(
            small_heterophilous_graph,
            SimRankConfig(top_k=16, exact_size_limit=10))
        assert operator.method == "localpush"

    def test_top_k_limits_entries(self, small_heterophilous_graph):
        operator = simrank_operator(small_heterophilous_graph,
                                    SimRankConfig(top_k=8))
        assert operator.average_entries_per_node <= 9.0

    def test_no_topk_keeps_more_entries(self, small_heterophilous_graph):
        pruned = simrank_operator(small_heterophilous_graph,
                                  SimRankConfig(top_k=4))
        full = simrank_operator(small_heterophilous_graph, SimRankConfig())
        assert full.nnz >= pruned.nnz

    def test_row_normalize_option(self, small_heterophilous_graph):
        operator = simrank_operator(
            small_heterophilous_graph,
            SimRankConfig(top_k=8, row_normalize=True))
        sums = np.asarray(operator.matrix.sum(axis=1)).ravel()
        np.testing.assert_allclose(sums[sums > 0], 1.0)

    def test_methods_agree_roughly(self, small_heterophilous_graph):
        """Series and LocalPush approximate the same matrix (Theorem III.2)."""
        series = simrank_operator(
            small_heterophilous_graph,
            SimRankConfig(method="series", epsilon=0.05)).matrix.toarray()
        push = simrank_operator(
            small_heterophilous_graph,
            SimRankConfig(method="localpush", epsilon=0.05)).matrix.toarray()
        assert np.abs(series - push).max() < 0.1

    def test_exact_method(self, tiny_graph):
        operator = simrank_operator(tiny_graph, SimRankConfig(method="exact"))
        assert operator.method == "exact"
        np.testing.assert_allclose(operator.matrix.diagonal(), 1.0)

    def test_records_precompute_time(self, tiny_graph):
        operator = simrank_operator(tiny_graph, SimRankConfig(top_k=4))
        assert operator.precompute_seconds >= 0.0

    def test_invalid_method(self, tiny_graph):
        with pytest.raises(ConfigError):
            simrank_operator(tiny_graph, SimRankConfig(method="magic"))

    def test_invalid_top_k(self, tiny_graph):
        with pytest.raises(ConfigError):
            simrank_operator(tiny_graph, SimRankConfig(top_k=0))
