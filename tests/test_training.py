"""Tests for the training harness."""

import numpy as np
import pytest

from repro.config import SimRankConfig
from repro.errors import TrainingError
from repro.models.registry import create_model
from repro.training.config import FAST_CONFIG, TrainConfig
from repro.training.early_stopping import EarlyStopping
from repro.training.evaluation import evaluate_model, repeated_evaluation
from repro.training.metrics import accuracy_score, confusion_matrix, macro_f1_score
from repro.training.trainer import Trainer


class TestTrainConfig:
    def test_defaults_valid(self):
        config = TrainConfig()
        assert config.optimizer == "adam"

    def test_invalid_learning_rate(self):
        with pytest.raises(TrainingError):
            TrainConfig(learning_rate=0.0)

    def test_invalid_optimizer(self):
        with pytest.raises(TrainingError):
            TrainConfig(optimizer="rmsprop")

    def test_invalid_min_epochs(self):
        with pytest.raises(TrainingError):
            TrainConfig(min_epochs=500, max_epochs=100)

    def test_with_overrides(self):
        config = TrainConfig().with_overrides(max_epochs=10)
        assert config.max_epochs == 10
        assert TrainConfig().max_epochs != 10


class TestEarlyStopping:
    def test_improvement_resets_counter(self):
        stopper = EarlyStopping(patience=2)
        assert stopper.update(0.5, 0)
        assert not stopper.update(0.4, 1)
        assert stopper.update(0.6, 2)
        assert stopper.counter == 0

    def test_should_stop_after_patience(self):
        stopper = EarlyStopping(patience=2)
        stopper.update(0.5, 0)
        stopper.update(0.4, 1)
        stopper.update(0.3, 2)
        assert stopper.should_stop

    def test_tracks_best_epoch(self):
        stopper = EarlyStopping(patience=5)
        stopper.update(0.2, 0)
        stopper.update(0.9, 1)
        stopper.update(0.5, 2)
        assert stopper.best_epoch == 1
        assert stopper.best_score == pytest.approx(0.9)

    def test_invalid_patience(self):
        with pytest.raises(ValueError):
            EarlyStopping(patience=0)


class TestMetrics:
    def test_accuracy(self):
        assert accuracy_score([0, 1, 1], [0, 1, 0]) == pytest.approx(2 / 3)

    def test_accuracy_shape_mismatch(self):
        with pytest.raises(ValueError):
            accuracy_score([0, 1], [0])

    def test_confusion_matrix(self):
        matrix = confusion_matrix([0, 0, 1, 1], [0, 1, 1, 1])
        np.testing.assert_array_equal(matrix, [[1, 1], [0, 2]])

    def test_macro_f1_perfect(self):
        assert macro_f1_score([0, 1, 2], [0, 1, 2]) == pytest.approx(1.0)

    def test_macro_f1_handles_missing_class(self):
        value = macro_f1_score([0, 0, 1], [0, 0, 0])
        assert 0.0 <= value < 1.0


class TestTrainer:
    def test_fit_returns_result(self, small_dataset):
        model = create_model("mlp", small_dataset.graph, rng=0, hidden=16)
        result = Trainer(model, FAST_CONFIG).fit(small_dataset.split(0))
        assert 0.0 <= result.test_accuracy <= 1.0
        assert result.num_epochs >= FAST_CONFIG.min_epochs
        assert result.best_epoch >= 0
        assert len(result.history) == result.num_epochs

    def test_training_improves_over_untrained(self, small_dataset):
        graph = small_dataset.graph
        split = small_dataset.split(0)
        untrained = create_model("mlp", graph, rng=0, hidden=16)
        untrained_acc = untrained.accuracy(split.test)
        model = create_model("mlp", graph, rng=0, hidden=16)
        result = Trainer(model, FAST_CONFIG).fit(split)
        assert result.test_accuracy >= untrained_acc

    def test_early_stopping_limits_epochs(self, small_dataset):
        config = TrainConfig(max_epochs=200, patience=5, min_epochs=1,
                             track_test_history=False)
        model = create_model("mlp", small_dataset.graph, rng=0, hidden=16)
        result = Trainer(model, config).fit(small_dataset.split(0))
        assert result.num_epochs < 200

    def test_timing_breakdown_present(self, small_dataset):
        model = create_model("sigma", small_dataset.graph, rng=0, hidden=16,
                             simrank=SimRankConfig(top_k=8))
        result = Trainer(model, FAST_CONFIG).fit(small_dataset.split(0))
        assert result.timing.precompute > 0.0
        assert result.timing.training > 0.0
        assert result.learning_time == pytest.approx(
            result.timing.precompute + result.timing.training)

    def test_convergence_curve_monotone_time(self, small_dataset):
        model = create_model("mlp", small_dataset.graph, rng=0, hidden=16)
        config = FAST_CONFIG.with_overrides(track_test_history=True)
        result = Trainer(model, config).fit(small_dataset.split(0))
        curve = result.convergence_curve()
        times = [point[0] for point in curve]
        assert times == sorted(times)

    def test_sgd_optimizer_option(self, small_dataset):
        config = FAST_CONFIG.with_overrides(optimizer="sgd", learning_rate=0.05)
        model = create_model("mlp", small_dataset.graph, rng=0, hidden=16)
        result = Trainer(model, config).fit(small_dataset.split(0))
        assert 0.0 <= result.test_accuracy <= 1.0


class TestEvaluation:
    def test_evaluate_model(self, small_dataset):
        result = evaluate_model("mlp", small_dataset, config=FAST_CONFIG, hidden=16)
        assert 0.0 <= result.test_accuracy <= 1.0

    def test_repeated_evaluation_summary(self, small_dataset):
        summary = repeated_evaluation("mlp", small_dataset, num_repeats=2,
                                      config=FAST_CONFIG, hidden=16)
        assert len(summary.accuracies) == 2
        assert 0.0 <= summary.mean_accuracy <= 1.0
        assert summary.std_accuracy >= 0.0
        row = summary.as_row()
        assert row["model"] == "mlp"
        assert row["dataset"] == small_dataset.name

    def test_repeats_capped_by_available_splits(self, small_dataset):
        summary = repeated_evaluation("mlp", small_dataset, num_repeats=50,
                                      config=FAST_CONFIG, hidden=16)
        assert len(summary.accuracies) == small_dataset.num_splits
