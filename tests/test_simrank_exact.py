"""Tests for exact and linearized SimRank."""

import numpy as np
import pytest

from repro.errors import SimRankError
from repro.graphs.graph import Graph
from repro.simrank.exact import exact_simrank, linearized_simrank


class TestExactSimRank:
    def test_diagonal_is_one(self, tiny_graph):
        scores = exact_simrank(tiny_graph)
        np.testing.assert_allclose(np.diag(scores), 1.0)

    def test_symmetric(self, tiny_graph):
        scores = exact_simrank(tiny_graph)
        np.testing.assert_allclose(scores, scores.T)

    def test_values_in_unit_interval(self, tiny_graph):
        scores = exact_simrank(tiny_graph)
        assert scores.min() >= 0.0
        assert scores.max() <= 1.0 + 1e-12

    def test_satisfies_recursive_definition(self, tiny_graph):
        """Off-diagonal entries satisfy Eq. (2) of the paper at the fixed point."""
        decay = 0.6
        scores = exact_simrank(tiny_graph, decay=decay, num_iterations=60)
        adjacency = tiny_graph.adjacency
        n = tiny_graph.num_nodes
        for u in range(n):
            for v in range(n):
                if u == v:
                    continue
                nu = adjacency.indices[adjacency.indptr[u]:adjacency.indptr[u + 1]]
                nv = adjacency.indices[adjacency.indptr[v]:adjacency.indptr[v + 1]]
                expected = decay * scores[np.ix_(nu, nv)].sum() / (len(nu) * len(nv))
                assert scores[u, v] == pytest.approx(expected, abs=1e-6)

    def test_two_node_path(self):
        # For a single edge the only neighbour pair of (0, 1) is (1, 0),
        # which is itself off-diagonal: S(0,1) = c·S(1,0) has the unique
        # fixed point S(0,1) = 0 under the Jeh-Widom definition.
        graph = Graph.from_edges(2, [(0, 1)])
        scores = exact_simrank(graph, decay=0.6, num_iterations=100)
        assert scores[0, 1] == pytest.approx(0.0, abs=1e-9)

    def test_star_graph_leaves_are_similar(self):
        # Leaves of a star share the centre as their only neighbour, so their
        # SimRank is exactly the decay factor c.
        graph = Graph.from_edges(4, [(0, 1), (0, 2), (0, 3)])
        scores = exact_simrank(graph, decay=0.6)
        assert scores[1, 2] == pytest.approx(0.6, abs=1e-9)
        assert scores[1, 3] == pytest.approx(0.6, abs=1e-9)

    def test_invalid_decay_raises(self, tiny_graph):
        with pytest.raises(SimRankError):
            exact_simrank(tiny_graph, decay=1.5)

    def test_invalid_iterations_raises(self, tiny_graph):
        with pytest.raises(SimRankError):
            exact_simrank(tiny_graph, num_iterations=0)


class TestLinearizedSimRank:
    def test_symmetric_and_nonnegative(self, tiny_graph):
        scores = linearized_simrank(tiny_graph)
        np.testing.assert_allclose(scores, scores.T)
        assert scores.min() >= 0.0

    def test_include_self_controls_identity_term(self, tiny_graph):
        with_self = linearized_simrank(tiny_graph, include_self=True)
        without_self = linearized_simrank(tiny_graph, include_self=False)
        np.testing.assert_allclose(with_self - without_self, np.eye(tiny_graph.num_nodes))

    def test_more_iterations_monotonically_increase(self, tiny_graph):
        few = linearized_simrank(tiny_graph, num_iterations=2)
        many = linearized_simrank(tiny_graph, num_iterations=8)
        assert (many - few).min() >= -1e-12

    def test_truncation_error_bound(self, tiny_graph):
        """Choosing iterations from the tolerance keeps the truncation below it."""
        tolerance = 1e-4
        auto = linearized_simrank(tiny_graph, tolerance=tolerance)
        longer = linearized_simrank(tiny_graph, num_iterations=60)
        assert np.abs(auto - longer).max() < tolerance

    def test_star_graph_leaf_and_centre_pairs(self):
        # Star leaves meet at the centre after one step (probability one), so
        # their score is at least c.  Leaf/centre walks can never coincide
        # (opposite parity), so that score is exactly zero.
        graph = Graph.from_edges(4, [(0, 1), (0, 2), (0, 3)])
        scores = linearized_simrank(graph, decay=0.6, num_iterations=80,
                                    include_self=False)
        assert scores[1, 2] >= 0.6
        assert scores[1, 0] == pytest.approx(0.0, abs=1e-12)
