"""End-to-end integration tests across the whole library.

These tests exercise the same pipeline a user of the library would run:
generate a benchmark, precompute the SimRank operator, train SIGMA and a
baseline, and compare behaviour — asserting the qualitative findings of the
paper (SIGMA helps under heterophily, is cheap to aggregate, and groups
same-class nodes).
"""

import numpy as np
import pytest

from repro.config import SimRankConfig
from repro import (
    TrainConfig,
    Trainer,
    create_model,
    linearized_simrank,
    load_dataset,
    localpush_simrank,
)
from repro.graphs import node_homophily
from repro.simrank import simrank_class_statistics
from repro.training.evaluation import repeated_evaluation

CONFIG = TrainConfig(max_epochs=120, patience=40, weight_decay=1e-3,
                     track_test_history=False)


@pytest.mark.slow
class TestEndToEnd:
    def test_sigma_beats_local_models_under_heterophily(self):
        """The paper's core claim at reduced scale: on a heterophilous graph,
        SIGMA's global aggregation beats feature-only and local uniform
        aggregation baselines."""
        dataset = load_dataset("arxiv-year", seed=0, scale_factor=0.6, cache=False)
        sigma = repeated_evaluation("sigma", dataset, num_repeats=2, config=CONFIG,
                                    seed=0, delta=0.3, final_layers=2)
        gcn = repeated_evaluation("gcn", dataset, num_repeats=2, config=CONFIG, seed=0)
        mlp = repeated_evaluation("mlp", dataset, num_repeats=2, config=CONFIG, seed=0)
        assert sigma.mean_accuracy > mlp.mean_accuracy
        assert sigma.mean_accuracy > gcn.mean_accuracy

    def test_simrank_separates_classes_on_generated_benchmark(self):
        dataset = load_dataset("squirrel", seed=0, scale_factor=0.5, cache=False)
        assert node_homophily(dataset.graph) < 0.5
        scores = linearized_simrank(dataset.graph, num_iterations=8)
        stats = simrank_class_statistics(dataset.graph, scores, num_pairs=5000, seed=0)
        assert stats.separation > 0.0

    def test_sigma_aggregation_cheaper_than_glognn(self):
        dataset = load_dataset("penn94", seed=0, scale_factor=0.5, cache=False)
        sigma = repeated_evaluation("sigma", dataset, num_repeats=1, config=CONFIG, seed=0)
        glognn = repeated_evaluation("glognn", dataset, num_repeats=1, config=CONFIG, seed=0)
        assert sigma.mean_aggregation_time < glognn.mean_aggregation_time

    def test_localpush_then_training_pipeline(self):
        """LocalPush output can be consumed directly by the training stack."""
        dataset = load_dataset("genius", seed=0, scale_factor=0.3, cache=False)
        push = localpush_simrank(dataset.graph, epsilon=0.1, absorb_residual=True)
        assert push.matrix.nnz > dataset.graph.num_nodes  # informative off-diagonals
        model = create_model("sigma", dataset.graph, rng=0,
                             simrank=SimRankConfig(method="localpush",
                                                   top_k=16))
        result = Trainer(model, CONFIG).fit(dataset.split(0))
        assert result.test_accuracy > 0.5  # two balanced classes: above chance

    def test_quickstart_docstring_example(self):
        """The package-level docstring example runs as written."""
        dataset = load_dataset("texas", seed=0)
        model = create_model("sigma", dataset.graph, rng=0)
        result = Trainer(model, TrainConfig(max_epochs=100)).fit(dataset.split(0))
        assert 0.0 <= result.test_accuracy <= 1.0
