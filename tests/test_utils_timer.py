"""Tests for repro.utils.timer."""

import pytest

from repro.utils.timer import Timer, TimingBreakdown


class TestTimer:
    def test_context_manager_accumulates(self):
        timer = Timer()
        with timer:
            pass
        assert timer.elapsed >= 0.0

    def test_start_twice_raises(self):
        timer = Timer()
        timer.start()
        with pytest.raises(RuntimeError):
            timer.start()

    def test_stop_without_start_raises(self):
        with pytest.raises(RuntimeError):
            Timer().stop()

    def test_reset(self):
        timer = Timer()
        with timer:
            pass
        timer.reset()
        assert timer.elapsed == 0.0

    def test_multiple_measurements_accumulate(self):
        timer = Timer()
        with timer:
            pass
        first = timer.elapsed
        with timer:
            pass
        assert timer.elapsed >= first


class TestTimingBreakdown:
    def test_add_and_get(self):
        breakdown = TimingBreakdown()
        breakdown.add("precompute", 1.5)
        breakdown.add("precompute", 0.5)
        assert breakdown.get("precompute") == pytest.approx(2.0)

    def test_missing_bucket_is_zero(self):
        assert TimingBreakdown().get("unknown") == 0.0

    def test_measure_context(self):
        breakdown = TimingBreakdown()
        with breakdown.measure("training"):
            pass
        assert breakdown.training >= 0.0

    def test_learning_is_precompute_plus_training(self):
        breakdown = TimingBreakdown()
        breakdown.add("precompute", 1.0)
        breakdown.add("training", 2.0)
        assert breakdown.learning == pytest.approx(3.0)

    def test_merged_with(self):
        a = TimingBreakdown({"precompute": 1.0})
        b = TimingBreakdown({"precompute": 2.0, "aggregation": 0.5})
        merged = a.merged_with(b)
        assert merged.precompute == pytest.approx(3.0)
        assert merged.aggregation == pytest.approx(0.5)
        # Originals are untouched.
        assert a.precompute == pytest.approx(1.0)

    def test_as_dict_returns_copy(self):
        breakdown = TimingBreakdown({"training": 1.0})
        copy = breakdown.as_dict()
        copy["training"] = 99.0
        assert breakdown.training == pytest.approx(1.0)
