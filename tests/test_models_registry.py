"""Tests for the model registry."""

import inspect

import pytest

from repro.config import SimRankConfig
from repro.errors import ModelError
from repro.models import SIGMA, GCN
from repro.models.registry import (
    _REGISTRY,
    create_model,
    default_hyperparameters,
    list_models,
)


class TestRegistry:
    def test_fifteen_models_registered(self):
        assert len(list_models()) == 15
        assert "sigma" in list_models()
        assert "glognn" in list_models()

    def test_create_model_returns_correct_class(self, small_heterophilous_graph):
        model = create_model("sigma", small_heterophilous_graph, rng=0,
                             simrank=SimRankConfig(top_k=8))
        assert isinstance(model, SIGMA)
        model = create_model("GCN", small_heterophilous_graph, rng=0)
        assert isinstance(model, GCN)

    def test_unknown_model_raises(self, small_heterophilous_graph):
        with pytest.raises(ModelError):
            create_model("transformer", small_heterophilous_graph)

    def test_unknown_defaults_raise(self):
        with pytest.raises(ModelError):
            default_hyperparameters("transformer")

    def test_defaults_are_copies(self):
        first = default_hyperparameters("mixhop")
        first["hidden"] = 9999
        second = default_hyperparameters("mixhop")
        assert second["hidden"] != 9999

    def test_overrides_replace_defaults(self, small_heterophilous_graph):
        model = create_model("sigma", small_heterophilous_graph, rng=0,
                             hidden=24, simrank=SimRankConfig(top_k=8))
        assert model.hidden == 24

    def test_every_registered_model_has_defaults(self):
        for name in list_models():
            assert isinstance(default_hyperparameters(name), dict)


class TestNoDuplicateDefaults:
    """Registry entries hold paper-table *overrides only*: a key whose
    value equals the model ``__init__`` default would be a silently
    diverging duplicate the moment either side changes."""

    @pytest.mark.parametrize("name", sorted(_REGISTRY))
    def test_registry_entries_are_genuine_overrides(self, name):
        signature = inspect.signature(_REGISTRY[name].__init__)
        for key, value in default_hyperparameters(name).items():
            assert key in signature.parameters, (
                f"{name}: registry key {key!r} is not an __init__ parameter")
            default = signature.parameters[key].default
            assert default is inspect.Parameter.empty or default != value, (
                f"{name}: registry key {key!r} duplicates the __init__ "
                f"default {default!r} — delete it from _DEFAULTS")

    def test_sigma_models_carry_no_operator_kwargs(self):
        """The SIGMA operator settings live in SIGMA_DEFAULT_SIMRANK, not
        as loose registry kwargs that would re-enter the six-layer relay."""
        for name in ("sigma", "sigma_iterative"):
            assert not any(key.startswith("simrank") or key in ("epsilon", "top_k")
                           for key in default_hyperparameters(name))

    def test_registry_defaults_match_direct_construction(
            self, small_heterophilous_graph):
        via_registry = create_model("sigma", small_heterophilous_graph, rng=0)
        direct = SIGMA(small_heterophilous_graph, rng=0)
        assert via_registry.simrank_config == direct.simrank_config
        assert via_registry.hidden == direct.hidden
