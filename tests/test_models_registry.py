"""Tests for the model registry."""

import pytest

from repro.errors import ModelError
from repro.models import SIGMA, GCN
from repro.models.registry import create_model, default_hyperparameters, list_models


class TestRegistry:
    def test_fifteen_models_registered(self):
        assert len(list_models()) == 15
        assert "sigma" in list_models()
        assert "glognn" in list_models()

    def test_create_model_returns_correct_class(self, small_heterophilous_graph):
        model = create_model("sigma", small_heterophilous_graph, rng=0, top_k=8)
        assert isinstance(model, SIGMA)
        model = create_model("GCN", small_heterophilous_graph, rng=0)
        assert isinstance(model, GCN)

    def test_unknown_model_raises(self, small_heterophilous_graph):
        with pytest.raises(ModelError):
            create_model("transformer", small_heterophilous_graph)

    def test_unknown_defaults_raise(self):
        with pytest.raises(ModelError):
            default_hyperparameters("transformer")

    def test_defaults_are_copies(self):
        first = default_hyperparameters("sigma")
        first["hidden"] = 9999
        second = default_hyperparameters("sigma")
        assert second["hidden"] != 9999

    def test_overrides_replace_defaults(self, small_heterophilous_graph):
        model = create_model("sigma", small_heterophilous_graph, rng=0,
                             hidden=24, top_k=8)
        assert model.hidden == 24

    def test_every_registered_model_has_defaults(self):
        for name in list_models():
            assert isinstance(default_hyperparameters(name), dict)
