"""Equivalence suite for :mod:`repro.dynamic` incremental maintenance.

The repaired operator must satisfy the same ``(1−c)·ε`` residual bound —
and hence the same ``< ε`` estimate bound against the dense
``linearized_simrank`` oracle — as a fresh recompute, for every update
kind (insert/delete/reweight), for component merges and splits, and
under every executor.  The cache chapter pins the delta-chained entry
round-trip that lets a warm base entry + a small delta skip the full
precompute.
"""

import numpy as np
import pytest
import scipy.sparse as sp

from _simrank_fixtures import disconnected, erdos_renyi, weighted
from repro.api import apply_updates
from repro.config import DynamicConfig, SimRankConfig
from repro.dynamic import DynamicOperator, RepairResult
from repro.errors import ConfigError, GraphError, SimRankError
from repro.graphs.delta import DELTA_KINDS, GraphDelta, UpdateBatch
from repro.graphs.fingerprint import graph_fingerprint, payload_digest
from repro.graphs.graph import Graph
from repro.simrank.cache import get_operator_cache
from repro.simrank.exact import linearized_simrank
from repro.simrank.topk import simrank_operator

EPSILON = 0.05
DECAY = 0.6

CONFIG = SimRankConfig(method="localpush", epsilon=EPSILON, decay=DECAY)


def absent_pairs(graph):
    dense = graph.adjacency.toarray()
    n = graph.num_nodes
    return [(u, v) for u in range(n) for v in range(u + 1, n)
            if dense[u, v] == 0]


def present_pairs(graph):
    return [tuple(map(int, pair)) for pair in graph.edge_list()]


def oracle_error(operator: DynamicOperator) -> float:
    reference = linearized_simrank(operator.graph, decay=DECAY,
                                   num_iterations=60)
    snapshot = operator.operator().matrix.toarray()
    return float(np.abs(snapshot - reference).max())


# --------------------------------------------------------------------- #
# GraphDelta / UpdateBatch
# --------------------------------------------------------------------- #
class TestGraphDelta:
    def test_canonicalises_endpoints(self):
        delta = GraphDelta("insert", 7, 3)
        assert (delta.u, delta.v) == (3, 7)
        assert delta.weight == 1.0

    def test_delete_carries_no_weight(self):
        assert GraphDelta("delete", 0, 1).weight is None
        with pytest.raises(GraphError):
            GraphDelta("delete", 0, 1, weight=2.0)

    @pytest.mark.parametrize("kind", DELTA_KINDS)
    def test_round_trips_through_dict(self, kind):
        weight = None if kind == "delete" else 2.5
        delta = GraphDelta(kind, 4, 2, weight=weight)
        assert GraphDelta.from_dict(delta.to_dict()) == delta

    @pytest.mark.parametrize("bad", [
        dict(kind="upsert", u=0, v=1),
        dict(kind="insert", u=0, v=0),
        dict(kind="insert", u=-1, v=1),
        dict(kind="insert", u=0, v=1, weight=0.0),
        dict(kind="insert", u=0, v=1, weight=-2.0),
        dict(kind="reweight", u=0, v=1, weight=float("nan")),
    ])
    def test_invalid_deltas_raise(self, bad):
        with pytest.raises(GraphError):
            GraphDelta(**bad)

    def test_from_dict_rejects_unknown_fields(self):
        with pytest.raises(GraphError):
            GraphDelta.from_dict({"kind": "insert", "u": 0, "v": 1,
                                  "extra": True})


class TestUpdateBatch:
    def test_coerce_accepts_delta_batch_and_iterable(self):
        delta = GraphDelta("insert", 0, 1)
        batch = UpdateBatch((delta,))
        assert UpdateBatch.coerce(delta) == batch
        assert UpdateBatch.coerce(batch) is batch
        assert UpdateBatch.coerce([delta]) == batch

    def test_concatenation_and_touched_nodes(self):
        first = UpdateBatch((GraphDelta("insert", 0, 1),))
        second = UpdateBatch((GraphDelta("delete", 2, 3),))
        combined = first + second
        assert len(combined) == 2
        assert tuple(combined.touched_nodes()) == (0, 1, 2, 3)

    def test_content_hash_is_order_sensitive_and_stable(self):
        a = GraphDelta("insert", 0, 1)
        b = GraphDelta("insert", 2, 3)
        assert (UpdateBatch((a, b)).content_hash()
                == UpdateBatch((a, b)).content_hash())
        assert (UpdateBatch((a, b)).content_hash()
                != UpdateBatch((b, a)).content_hash())

    def test_round_trips_through_dict(self):
        batch = UpdateBatch((GraphDelta("insert", 0, 1),
                             GraphDelta("delete", 2, 3),
                             GraphDelta("reweight", 1, 4, weight=2.0)))
        assert UpdateBatch.from_dict(batch.to_dict()) == batch


# --------------------------------------------------------------------- #
# Graph.apply_delta
# --------------------------------------------------------------------- #
class TestApplyDelta:
    def test_insert_delete_reweight_semantics(self):
        graph = erdos_renyi(20, 0.15, seed=3)
        insert_pair = absent_pairs(graph)[0]
        delete_pair = present_pairs(graph)[0]
        reweight_pair = present_pairs(graph)[1]
        updated = graph.apply_delta([
            GraphDelta("insert", *insert_pair),
            GraphDelta("delete", *delete_pair),
            GraphDelta("reweight", *reweight_pair, weight=3.0),
        ])
        dense = updated.adjacency.toarray()
        assert dense[insert_pair] == 1.0 and dense[insert_pair[::-1]] == 1.0
        assert dense[delete_pair] == 0.0 and dense[delete_pair[::-1]] == 0.0
        assert dense[reweight_pair] == 3.0
        # the original is untouched
        assert graph.adjacency.toarray()[delete_pair] != 0.0
        assert (updated.adjacency != updated.adjacency.T).nnz == 0

    def test_sequential_batch_semantics(self):
        graph = erdos_renyi(12, 0.2, seed=1)
        pair = absent_pairs(graph)[0]
        updated = graph.apply_delta([GraphDelta("insert", *pair),
                                     GraphDelta("delete", *pair)])
        assert updated.adjacency.toarray()[pair] == 0.0
        assert updated.num_edges == graph.num_edges

    def test_strictness_violations_raise(self):
        graph = erdos_renyi(12, 0.2, seed=1)
        present = present_pairs(graph)[0]
        absent = absent_pairs(graph)[0]
        with pytest.raises(GraphError):
            graph.apply_delta(GraphDelta("insert", *present))
        with pytest.raises(GraphError):
            graph.apply_delta(GraphDelta("delete", *absent))
        with pytest.raises(GraphError):
            graph.apply_delta(GraphDelta("reweight", *absent, weight=2.0))
        with pytest.raises(GraphError):
            graph.apply_delta(GraphDelta("insert", 0, graph.num_nodes))

    def test_features_and_labels_carry_over(self):
        graph = erdos_renyi(10, 0.3, seed=2)
        graph = graph.with_labels(np.arange(10) % 2).with_features(np.eye(10))
        pair = absent_pairs(graph)[0]
        updated = graph.apply_delta(GraphDelta("insert", *pair))
        assert np.array_equal(updated.labels, graph.labels)
        assert np.array_equal(updated.features, graph.features)
        assert updated.name == graph.name


# --------------------------------------------------------------------- #
# Repair equivalence: every update kind, merges, splits
# --------------------------------------------------------------------- #
class TestRepairEquivalence:
    def test_insert_repair_matches_oracle_and_fresh(self):
        graph = erdos_renyi(50, 0.08, seed=0)
        operator = DynamicOperator(graph, simrank=CONFIG)
        result = operator.apply(GraphDelta("insert", *absent_pairs(graph)[3]))
        assert isinstance(result, RepairResult)
        assert result.warm_start == "maintained"
        assert operator.residual_max <= operator.push_threshold * (1 + 1e-12)
        assert oracle_error(operator) < EPSILON
        fresh = simrank_operator(operator.graph, config=CONFIG)
        diff = np.abs(operator.operator().matrix.toarray()
                      - fresh.matrix.toarray()).max()
        assert diff < 2 * EPSILON

    def test_delete_repair_matches_oracle(self):
        graph = erdos_renyi(50, 0.1, seed=4)
        operator = DynamicOperator(graph, simrank=CONFIG)
        operator.apply(GraphDelta("delete", *present_pairs(graph)[5]))
        assert oracle_error(operator) < EPSILON

    def test_reweight_repair_matches_oracle(self):
        graph = weighted(40, seed=5)
        operator = DynamicOperator(graph, simrank=CONFIG)
        pair = present_pairs(graph)[2]
        old = float(graph.adjacency[pair[0], pair[1]])
        operator.apply(GraphDelta("reweight", *pair, weight=old * 3.0))
        assert oracle_error(operator) < EPSILON

    def test_mixed_batch_and_repeated_updates_stay_in_bound(self):
        graph = erdos_renyi(40, 0.1, seed=6)
        operator = DynamicOperator(graph, simrank=CONFIG)
        for _ in range(3):
            batch = UpdateBatch((
                GraphDelta("insert", *absent_pairs(operator.graph)[1]),
                GraphDelta("delete", *present_pairs(operator.graph)[0]),
            ))
            operator.apply(batch)
            assert oracle_error(operator) < EPSILON
        assert operator.updates_applied == 3
        assert len(operator.chain) == 6

    def test_component_merge(self):
        graph = disconnected()  # two ER components + isolated nodes
        operator = DynamicOperator(graph, simrank=CONFIG)
        # Bridge the two components, then attach an isolated node.
        operator.apply([GraphDelta("insert", 5, 35),
                        GraphDelta("insert", 10, graph.num_nodes - 1)])
        assert oracle_error(operator) < EPSILON

    def test_component_split(self):
        # A dumbbell: two cliques joined by one bridge; deleting the
        # bridge splits the graph into two components.
        n = 12
        dense = np.zeros((n, n))
        dense[:6, :6] = 1.0
        dense[6:, 6:] = 1.0
        np.fill_diagonal(dense, 0.0)
        dense[5, 6] = dense[6, 5] = 1.0
        graph = Graph(sp.csr_matrix(dense), name="dumbbell")
        operator = DynamicOperator(graph, simrank=CONFIG)
        operator.apply(GraphDelta("delete", 5, 6))
        assert oracle_error(operator) < EPSILON

    def test_noop_batch_changes_nothing(self):
        graph = erdos_renyi(30, 0.1, seed=7)
        operator = DynamicOperator(graph, simrank=CONFIG)
        before = operator.operator().matrix.toarray()
        result = operator.apply(UpdateBatch())
        assert result.num_pushes == 0 and result.warm_start == "noop"
        assert np.array_equal(operator.operator().matrix.toarray(), before)

    def test_batch_cap_is_enforced(self):
        graph = erdos_renyi(30, 0.1, seed=7)
        operator = DynamicOperator(
            graph, simrank=CONFIG, dynamic=DynamicConfig(max_batch_edges=1))
        pairs = absent_pairs(graph)[:2]
        with pytest.raises(SimRankError):
            operator.apply([GraphDelta("insert", *pair) for pair in pairs])

    def test_failed_repair_leaves_state_untouched(self):
        graph = erdos_renyi(30, 0.1, seed=8)
        operator = DynamicOperator(graph, simrank=CONFIG)
        before = operator.operator().matrix.toarray()
        with pytest.raises(GraphError):
            operator.apply(GraphDelta("delete", *absent_pairs(graph)[0]))
        assert operator.graph is graph
        assert operator.updates_applied == 0
        assert np.array_equal(operator.operator().matrix.toarray(), before)


class TestExecutorEquivalence:
    @pytest.mark.parametrize("executor", ["serial", "thread", "process"])
    def test_repair_is_bit_identical_across_executors(self, executor):
        graph = erdos_renyi(60, 0.08, seed=9)
        batch = UpdateBatch((GraphDelta("insert", *absent_pairs(graph)[2]),
                             GraphDelta("delete", *present_pairs(graph)[1])))
        serial_config = CONFIG.with_overrides(backend="vectorized",
                                              executor="serial")
        reference = DynamicOperator(graph, simrank=serial_config)
        reference.apply(batch)
        config = CONFIG.with_overrides(backend="vectorized",
                                       executor=executor, workers=2)
        operator = DynamicOperator(graph, simrank=config)
        operator.apply(batch)
        expected = reference.operator().matrix
        actual = operator.operator().matrix
        assert np.array_equal(expected.indptr, actual.indptr)
        assert np.array_equal(expected.indices, actual.indices)
        assert np.array_equal(expected.data, actual.data)
        assert oracle_error(operator) < EPSILON


# --------------------------------------------------------------------- #
# Cache integration: warm start + delta chain
# --------------------------------------------------------------------- #
class TestDeltaChainedCache:
    def test_warm_base_entry_skips_the_full_build(self, tmp_path):
        graph = erdos_renyi(50, 0.1, seed=10)
        cache = get_operator_cache(tmp_path)
        maintenance = CONFIG.with_overrides(top_k=None, row_normalize=False,
                                            dtype="float64",
                                            cache_dir=str(tmp_path))
        simrank_operator(graph, config=maintenance)
        operator = DynamicOperator(graph, simrank=CONFIG, cache=cache)
        assert operator.build_cache_hit
        assert operator.build_pushes == 0
        result = operator.apply(
            GraphDelta("insert", *absent_pairs(graph)[0]))
        assert result.warm_start == "reconstructed"
        assert oracle_error(operator) < EPSILON

    def test_chain_round_trip_and_miss(self, tmp_path):
        graph = erdos_renyi(40, 0.1, seed=11)
        cache = get_operator_cache(tmp_path)
        batch = UpdateBatch((GraphDelta("insert", *absent_pairs(graph)[1]),))
        operator = DynamicOperator(graph, simrank=CONFIG, cache=cache)
        operator.apply(batch)

        chained = DynamicOperator.from_chain(graph, batch, simrank=CONFIG,
                                             cache=cache)
        assert chained is not None
        assert chained.build_cache_hit and chained.build_pushes == 0
        assert np.array_equal(chained.operator().matrix.toarray(),
                              operator.operator().matrix.toarray())
        # a chained operator keeps accepting updates (reconstruction path)
        follow_up = chained.apply(
            GraphDelta("insert", *absent_pairs(chained.graph)[4]))
        assert follow_up.warm_start == "reconstructed"
        assert oracle_error(chained) < EPSILON

        other = UpdateBatch((GraphDelta("insert", *absent_pairs(graph)[7]),))
        assert DynamicOperator.from_chain(graph, other, simrank=CONFIG,
                                          cache=cache) is None
        assert DynamicOperator.from_chain(graph, batch, simrank=CONFIG,
                                          cache=None) is None

    def test_store_repaired_false_writes_nothing(self, tmp_path):
        graph = erdos_renyi(30, 0.12, seed=12)
        cache = get_operator_cache(tmp_path / "off")
        operator = DynamicOperator(
            graph, simrank=CONFIG, cache=cache,
            dynamic=DynamicConfig(store_repaired=False))
        batch = UpdateBatch((GraphDelta("insert", *absent_pairs(graph)[0]),))
        operator.apply(batch)
        assert cache.stores == 0
        assert DynamicOperator.from_chain(graph, batch, simrank=CONFIG,
                                          cache=cache) is None

    def test_delta_key_validates_fields(self, tmp_path):
        cache = get_operator_cache(tmp_path / "keys")
        with pytest.raises(ValueError):
            cache.delta_key_for("base", "delta", {"method": "localpush"})


# --------------------------------------------------------------------- #
# Shared fingerprint helpers
# --------------------------------------------------------------------- #
class TestFingerprintHelpers:
    def test_graph_fingerprint_tracks_structure(self):
        graph = erdos_renyi(20, 0.2, seed=13)
        updated = graph.apply_delta(
            GraphDelta("insert", *absent_pairs(graph)[0]))
        assert graph_fingerprint(graph) == graph_fingerprint(graph.copy())
        assert graph_fingerprint(graph) != graph_fingerprint(updated)

    def test_payload_digest_is_key_order_independent(self):
        assert (payload_digest({"a": 1, "b": 2})
                == payload_digest({"b": 2, "a": 1}))
        assert payload_digest({"a": 1}) != payload_digest({"a": 2})


# --------------------------------------------------------------------- #
# Facade and config
# --------------------------------------------------------------------- #
class TestApplyUpdatesFacade:
    def test_returns_a_live_repaired_operator(self):
        graph = erdos_renyi(40, 0.1, seed=14)
        operator = apply_updates(
            graph, GraphDelta("insert", *absent_pairs(graph)[0]),
            config=CONFIG)
        assert isinstance(operator, DynamicOperator)
        assert operator.updates_applied == 1
        assert oracle_error(operator) < EPSILON

    def test_second_identical_call_replays_from_the_chain(self, tmp_path):
        graph = erdos_renyi(40, 0.1, seed=15)
        config = CONFIG.with_overrides(cache_dir=str(tmp_path))
        delta = GraphDelta("insert", *absent_pairs(graph)[0])
        first = apply_updates(graph, delta, config=config)
        second = apply_updates(graph, delta, config=config)
        assert second.build_cache_hit
        assert second.repair_pushes == 0
        assert np.array_equal(first.operator().matrix.toarray(),
                              second.operator().matrix.toarray())


class TestDynamicConfig:
    def test_defaults_and_round_trip(self):
        config = DynamicConfig()
        assert config.max_batch_edges == 4096
        assert config.background_repair and config.store_repaired
        assert DynamicConfig.from_dict(config.to_dict()) == config

    @pytest.mark.parametrize("kwargs", [
        dict(max_batch_edges=0),
        dict(max_batch_edges="many"),
        dict(repair_max_pushes=0),
    ])
    def test_invalid_values_raise(self, kwargs):
        with pytest.raises(ConfigError):
            DynamicConfig(**kwargs)

    def test_with_overrides_rejects_unknown_fields(self):
        with pytest.raises(ConfigError):
            DynamicConfig().with_overrides(max_edges=1)
