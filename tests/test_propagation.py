"""Tests for the sparse propagation layers."""

import numpy as np
import pytest
import scipy.sparse as sp

from repro.graphs.normalize import symmetric_normalize
from repro.propagation import (
    GPRPropagation,
    PersonalizedPropagation,
    PowerPropagation,
    SparsePropagation,
)
from repro.utils.timer import TimingBreakdown


@pytest.fixture()
def operator(tiny_graph) -> sp.csr_matrix:
    return symmetric_normalize(tiny_graph.adjacency)


@pytest.fixture()
def features(tiny_graph) -> np.ndarray:
    return np.random.default_rng(0).normal(size=(tiny_graph.num_nodes, 3))


class TestSparsePropagation:
    def test_forward_matches_matmul(self, operator, features):
        layer = SparsePropagation(operator)
        np.testing.assert_allclose(layer(features), operator @ features)

    def test_backward_uses_transpose(self, operator, features):
        layer = SparsePropagation(operator)
        layer(features)
        grad = np.ones_like(features)
        np.testing.assert_allclose(layer.backward(grad), operator.T @ grad)

    def test_timing_bucket_recorded(self, operator, features):
        timing = TimingBreakdown()
        layer = SparsePropagation(operator, timing=timing)
        layer(features)
        layer.backward(features)
        assert timing.aggregation >= 0.0
        assert "aggregation" in timing.buckets

    def test_linearity(self, operator, features):
        layer = SparsePropagation(operator)
        scaled = layer(2.0 * features)
        np.testing.assert_allclose(scaled, 2.0 * layer(features))


class TestPowerPropagation:
    def test_zero_steps_is_identity(self, operator, features):
        layer = PowerPropagation(operator, 0)
        np.testing.assert_allclose(layer(features), features)

    def test_two_steps_matches_square(self, operator, features):
        layer = PowerPropagation(operator, 2)
        np.testing.assert_allclose(layer(features), operator @ (operator @ features))

    def test_backward_is_transpose_power(self, operator, features):
        layer = PowerPropagation(operator, 3)
        layer(features)
        grad = np.random.default_rng(1).normal(size=features.shape)
        expected = operator.T @ (operator.T @ (operator.T @ grad))
        np.testing.assert_allclose(layer.backward(grad), expected)

    def test_negative_steps_raises(self, operator):
        with pytest.raises(ValueError):
            PowerPropagation(operator, -1)


class TestPersonalizedPropagation:
    def test_alpha_one_keeps_input(self, operator, features):
        layer = PersonalizedPropagation(operator, alpha=1.0, num_steps=5)
        np.testing.assert_allclose(layer(features), features)

    def test_converges_towards_ppr_limit(self, operator, features):
        few = PersonalizedPropagation(operator, alpha=0.2, num_steps=5)(features)
        many = PersonalizedPropagation(operator, alpha=0.2, num_steps=50)(features)
        more = PersonalizedPropagation(operator, alpha=0.2, num_steps=60)(features)
        assert np.abs(many - more).max() < np.abs(few - more).max()

    def test_backward_matches_finite_differences(self, operator):
        layer = PersonalizedPropagation(operator, alpha=0.3, num_steps=4)
        inputs = np.random.default_rng(0).normal(size=(6, 2))
        output = layer(inputs)
        grad_output = output.copy()  # loss = 0.5 * sum(output^2)
        analytic = layer.backward(grad_output)
        numeric = np.zeros_like(inputs)
        epsilon = 1e-6
        for i in range(inputs.shape[0]):
            for j in range(inputs.shape[1]):
                inputs[i, j] += epsilon
                plus = 0.5 * np.sum(layer(inputs)**2)
                inputs[i, j] -= 2 * epsilon
                minus = 0.5 * np.sum(layer(inputs)**2)
                inputs[i, j] += epsilon
                numeric[i, j] = (plus - minus) / (2 * epsilon)
        np.testing.assert_allclose(analytic, numeric, atol=1e-5)

    def test_invalid_parameters(self, operator):
        with pytest.raises(ValueError):
            PersonalizedPropagation(operator, alpha=1.5)
        with pytest.raises(ValueError):
            PersonalizedPropagation(operator, num_steps=0)


class TestGPRPropagation:
    def test_initial_weights_sum_to_one(self, operator):
        layer = GPRPropagation(operator, num_steps=6, alpha=0.1)
        assert layer.gammas.value.sum() == pytest.approx(1.0, abs=1e-6)

    def test_forward_is_weighted_hop_sum(self, operator, features):
        layer = GPRPropagation(operator, num_steps=2, alpha=0.2)
        output = layer(features)
        gammas = layer.gammas.value
        hop1 = operator @ features
        hop2 = operator @ hop1
        expected = gammas[0] * features + gammas[1] * hop1 + gammas[2] * hop2
        np.testing.assert_allclose(output, expected)

    def test_gamma_gradients_match_finite_differences(self, operator, features):
        layer = GPRPropagation(operator, num_steps=3, alpha=0.1)
        output = layer(features)
        layer.backward(output.copy())
        analytic = layer.gammas.grad.copy()
        numeric = np.zeros_like(analytic)
        epsilon = 1e-6
        for index in range(layer.gammas.value.size):
            layer.gammas.value[index] += epsilon
            plus = 0.5 * np.sum(layer(features)**2)
            layer.gammas.value[index] -= 2 * epsilon
            minus = 0.5 * np.sum(layer(features)**2)
            layer.gammas.value[index] += epsilon
            numeric[index] = (plus - minus) / (2 * epsilon)
        np.testing.assert_allclose(analytic, numeric, atol=1e-5)

    def test_backward_before_forward_raises(self, operator):
        layer = GPRPropagation(operator, num_steps=2)
        layer._hop_embeddings = []
        with pytest.raises(RuntimeError):
            layer.backward(np.ones((6, 3)))
