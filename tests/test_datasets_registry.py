"""Tests for the dataset registry and loader."""

import pytest

from repro.datasets.registry import (
    DATASET_SPECS,
    LARGE_DATASETS,
    SMALL_DATASETS,
    clear_dataset_cache,
    get_spec,
    list_datasets,
    load_dataset,
)
from repro.errors import DatasetError
from repro.graphs.homophily import node_homophily


class TestRegistryContents:
    def test_twelve_benchmarks(self):
        assert len(DATASET_SPECS) == 12
        assert len(SMALL_DATASETS) == 6
        assert len(LARGE_DATASETS) == 6

    def test_list_datasets_filters(self):
        assert list_datasets("small") == SMALL_DATASETS
        assert list_datasets("large") == LARGE_DATASETS
        assert set(list_datasets()) == set(DATASET_SPECS)

    def test_list_datasets_invalid_scale(self):
        with pytest.raises(DatasetError):
            list_datasets("medium")

    def test_specs_mirror_paper_statistics(self):
        texas = get_spec("texas")
        assert texas.paper_nodes == 183
        assert texas.config.num_classes == 5
        pokec = get_spec("pokec")
        assert pokec.paper_edges == 30622564
        assert pokec.config.num_classes == 2

    def test_aliases(self):
        assert get_spec("arxiv").name == "arxiv-year"
        assert get_spec("snap").name == "snap-patents"
        assert get_spec("twitch").name == "twitch-gamers"

    def test_unknown_dataset_raises(self):
        with pytest.raises(DatasetError):
            get_spec("imaginary")


class TestLoadDataset:
    def test_basic_load(self):
        dataset = load_dataset("texas", seed=0)
        assert dataset.name == "texas"
        assert dataset.num_splits == 5
        assert dataset.num_classes == 5

    def test_scale_factor_reduces_size(self):
        full = load_dataset("cora", seed=0)
        small = load_dataset("cora", seed=0, scale_factor=0.5)
        assert small.num_nodes < full.num_nodes

    def test_num_splits_override(self):
        dataset = load_dataset("texas", seed=0, num_splits=2)
        assert dataset.num_splits == 2

    def test_invalid_num_splits(self):
        with pytest.raises(DatasetError):
            load_dataset("texas", num_splits=0)

    def test_cache_returns_same_object(self):
        clear_dataset_cache()
        first = load_dataset("texas", seed=0)
        second = load_dataset("texas", seed=0)
        assert first is second

    def test_cache_disabled_returns_new_object(self):
        first = load_dataset("texas", seed=0, cache=False)
        second = load_dataset("texas", seed=0, cache=False)
        assert first is not second

    def test_homophily_regime_matches_paper(self):
        # Heterophilous benchmarks stay heterophilous, homophilous stay homophilous.
        chameleon = load_dataset("chameleon", seed=0, scale_factor=0.5, cache=False)
        cora = load_dataset("cora", seed=0, scale_factor=0.5, cache=False)
        assert node_homophily(chameleon.graph) < 0.45
        assert node_homophily(cora.graph) > 0.6

    def test_metadata_records_paper_statistics(self):
        dataset = load_dataset("pokec", seed=0, scale_factor=0.25, cache=False)
        assert dataset.metadata["paper_nodes"] == 1632803
        assert dataset.metadata["scale"] == "large"
        assert "measured_homophily" in dataset.metadata
