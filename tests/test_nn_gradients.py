"""Finite-difference gradient checks for the neural-network substrate.

Because the library implements backpropagation by hand, every layer's
backward pass is verified against numerical gradients of a scalar loss
(the sum of squared outputs).
"""

import numpy as np
import pytest

from repro.nn import (
    GELU,
    MLP,
    Adam,
    BatchNorm1d,
    LayerNorm,
    LeakyReLU,
    Linear,
    ReLU,
    Sequential,
    Tanh,
    softmax_cross_entropy,
)
from repro.nn.module import Module


def _loss_and_grad(output: np.ndarray) -> tuple[float, np.ndarray]:
    """Scalar test loss 0.5 * Σ output² and its gradient."""
    return 0.5 * float(np.sum(output**2)), output.copy()


def check_parameter_gradients(module: Module, inputs: np.ndarray, *,
                              epsilon: float = 1e-6, tolerance: float = 1e-5) -> None:
    """Compare analytic parameter gradients with central differences."""
    module.zero_grad()
    output = module(inputs)
    _, grad_output = _loss_and_grad(output)
    module.backward(grad_output)
    for param in module.parameters():
        analytic = param.grad.copy()
        flat = param.value.ravel()
        numeric = np.zeros_like(flat)
        for index in range(flat.size):
            original = flat[index]
            flat[index] = original + epsilon
            plus, _ = _loss_and_grad(module(inputs))
            flat[index] = original - epsilon
            minus, _ = _loss_and_grad(module(inputs))
            flat[index] = original
            numeric[index] = (plus - minus) / (2 * epsilon)
        np.testing.assert_allclose(analytic.ravel(), numeric, atol=tolerance, rtol=1e-4,
                                   err_msg=f"gradient mismatch for {param.name}")


def check_input_gradients(module: Module, inputs: np.ndarray, *,
                          epsilon: float = 1e-6, tolerance: float = 1e-5) -> None:
    """Compare analytic input gradients with central differences."""
    module.zero_grad()
    output = module(inputs)
    _, grad_output = _loss_and_grad(output)
    analytic = module.backward(grad_output)
    numeric = np.zeros_like(inputs)
    flat_inputs = inputs.ravel()
    flat_numeric = numeric.ravel()
    for index in range(flat_inputs.size):
        original = flat_inputs[index]
        flat_inputs[index] = original + epsilon
        plus, _ = _loss_and_grad(module(inputs))
        flat_inputs[index] = original - epsilon
        minus, _ = _loss_and_grad(module(inputs))
        flat_inputs[index] = original
        flat_numeric[index] = (plus - minus) / (2 * epsilon)
    np.testing.assert_allclose(analytic, numeric, atol=tolerance, rtol=1e-4)


@pytest.fixture()
def inputs() -> np.ndarray:
    return np.random.default_rng(0).normal(size=(5, 4))


class TestLayerGradients:
    def test_linear(self, inputs):
        check_parameter_gradients(Linear(4, 3, rng=0), inputs)
        check_input_gradients(Linear(4, 3, rng=0), inputs)

    def test_relu(self, inputs):
        check_input_gradients(ReLU(), inputs + 0.1)

    def test_leaky_relu(self, inputs):
        check_input_gradients(LeakyReLU(0.2), inputs + 0.1)

    def test_tanh(self, inputs):
        check_input_gradients(Tanh(), inputs)

    def test_gelu(self, inputs):
        check_input_gradients(GELU(), inputs)

    def test_layernorm(self, inputs):
        check_parameter_gradients(LayerNorm(4), inputs, tolerance=1e-4)
        check_input_gradients(LayerNorm(4), inputs, tolerance=1e-4)

    def test_batchnorm(self, inputs):
        check_parameter_gradients(BatchNorm1d(4, momentum=0.0), inputs, tolerance=1e-4)

    def test_sequential_stack(self, inputs):
        model = Sequential(Linear(4, 6, rng=0), Tanh(), Linear(6, 2, rng=1))
        check_parameter_gradients(model, inputs)
        check_input_gradients(model, inputs)

    def test_mlp_without_dropout(self, inputs):
        model = MLP(4, 6, 3, num_layers=2, dropout=0.0, rng=0)
        check_parameter_gradients(model, inputs)


class TestLossGradients:
    def test_cross_entropy_gradient_matches_finite_differences(self):
        rng = np.random.default_rng(1)
        logits = rng.normal(size=(6, 3))
        labels = rng.integers(0, 3, size=6)
        mask = np.array([0, 2, 3, 5])
        _, analytic = softmax_cross_entropy(logits, labels, mask)
        numeric = np.zeros_like(logits)
        epsilon = 1e-6
        for i in range(logits.shape[0]):
            for j in range(logits.shape[1]):
                logits[i, j] += epsilon
                plus, _ = softmax_cross_entropy(logits, labels, mask)
                logits[i, j] -= 2 * epsilon
                minus, _ = softmax_cross_entropy(logits, labels, mask)
                logits[i, j] += epsilon
                numeric[i, j] = (plus - minus) / (2 * epsilon)
        np.testing.assert_allclose(analytic, numeric, atol=1e-6)

    def test_cross_entropy_loss_value(self):
        logits = np.log(np.array([[0.7, 0.2, 0.1], [0.1, 0.8, 0.1]]))
        labels = np.array([0, 1])
        loss, _ = softmax_cross_entropy(logits, labels)
        expected = -0.5 * (np.log(0.7) + np.log(0.8))
        assert loss == pytest.approx(expected, abs=1e-9)

    def test_empty_mask_raises(self):
        with pytest.raises(ValueError):
            softmax_cross_entropy(np.zeros((3, 2)), np.zeros(3, dtype=int),
                                  np.zeros(3, dtype=bool))

    def test_out_of_range_labels_raise(self):
        with pytest.raises(ValueError):
            softmax_cross_entropy(np.zeros((3, 2)), np.array([0, 1, 5]))
