"""Tests for repro.utils.validation."""

import numpy as np
import pytest
import scipy.sparse as sp

from repro.utils.validation import (
    check_fraction,
    check_positive,
    check_probability_matrix,
    check_square,
)


class TestCheckPositive:
    def test_accepts_positive(self):
        assert check_positive("x", 1.5) == 1.5

    def test_rejects_zero_when_strict(self):
        with pytest.raises(ValueError):
            check_positive("x", 0.0)

    def test_accepts_zero_when_not_strict(self):
        assert check_positive("x", 0.0, strict=False) == 0.0

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            check_positive("x", -1.0, strict=False)


class TestCheckFraction:
    def test_accepts_bounds_inclusive(self):
        assert check_fraction("f", 0.0) == 0.0
        assert check_fraction("f", 1.0) == 1.0

    def test_rejects_bounds_exclusive(self):
        with pytest.raises(ValueError):
            check_fraction("f", 0.0, inclusive=False)

    def test_rejects_out_of_range(self):
        with pytest.raises(ValueError):
            check_fraction("f", 1.2)


class TestCheckSquare:
    def test_accepts_square_sparse(self):
        check_square("m", sp.identity(3))

    def test_rejects_rectangular(self):
        with pytest.raises(ValueError):
            check_square("m", np.zeros((2, 3)))


class TestCheckProbabilityMatrix:
    def test_accepts_row_stochastic(self):
        check_probability_matrix("p", np.array([[0.5, 0.5], [0.2, 0.8]]))

    def test_rejects_non_stochastic(self):
        with pytest.raises(ValueError):
            check_probability_matrix("p", np.array([[0.5, 0.6], [0.2, 0.8]]))
