"""Tests for dataset splits and the Dataset container."""

import numpy as np
import pytest

from repro.datasets.dataset import Dataset, Split
from repro.datasets.splits import random_splits, stratified_splits
from repro.errors import DatasetError


class TestSplit:
    def test_disjointness_enforced(self):
        with pytest.raises(DatasetError):
            Split(train=np.array([0, 1]), val=np.array([1, 2]), test=np.array([3]))

    def test_sizes(self):
        split = Split(train=np.array([0, 1]), val=np.array([2]), test=np.array([3, 4]))
        assert split.sizes == {"train": 2, "val": 1, "test": 2}

    def test_mask(self):
        split = Split(train=np.array([0, 2]), val=np.array([1]), test=np.array([3]))
        mask = split.mask("train", 5)
        np.testing.assert_array_equal(mask, [True, False, True, False, False])

    def test_mask_unknown_subset(self):
        split = Split(train=np.array([0]), val=np.array([1]), test=np.array([2]))
        with pytest.raises(DatasetError):
            split.mask("holdout", 3)


class TestRandomSplits:
    def test_partition_covers_all_nodes(self):
        splits = random_splits(100, num_splits=3, seed=0)
        assert len(splits) == 3
        for split in splits:
            union = np.concatenate([split.train, split.val, split.test])
            assert np.array_equal(np.sort(union), np.arange(100))

    def test_fractions_respected(self):
        split = random_splits(200, train_frac=0.5, val_frac=0.25, num_splits=1, seed=0)[0]
        assert split.train.size == 100
        assert split.val.size == 50
        assert split.test.size == 50

    def test_invalid_fractions(self):
        with pytest.raises(DatasetError):
            random_splits(10, train_frac=0.8, val_frac=0.3)

    def test_deterministic(self):
        a = random_splits(50, num_splits=2, seed=3)
        b = random_splits(50, num_splits=2, seed=3)
        np.testing.assert_array_equal(a[0].train, b[0].train)
        np.testing.assert_array_equal(a[1].test, b[1].test)


class TestStratifiedSplits:
    def test_every_class_in_every_subset(self):
        labels = np.repeat(np.arange(4), 25)
        splits = stratified_splits(labels, num_splits=3, seed=0)
        for split in splits:
            for subset in (split.train, split.val, split.test):
                assert set(labels[subset]) == {0, 1, 2, 3}

    def test_covers_all_nodes(self):
        labels = np.repeat(np.arange(3), 30)
        split = stratified_splits(labels, num_splits=1, seed=0)[0]
        union = np.concatenate([split.train, split.val, split.test])
        assert np.array_equal(np.sort(union), np.arange(90))


class TestDataset:
    def test_requires_labels_and_features(self, small_heterophilous_graph):
        graph = small_heterophilous_graph
        splits = stratified_splits(graph.labels, num_splits=1, seed=0)
        unlabeled = graph.with_labels(None) if False else None
        with pytest.raises(DatasetError):
            Dataset(graph=graph.__class__(graph.adjacency, features=graph.features),
                    splits=splits, name="bad")

    def test_requires_at_least_one_split(self, small_heterophilous_graph):
        with pytest.raises(DatasetError):
            Dataset(graph=small_heterophilous_graph, splits=[], name="bad")

    def test_split_index_out_of_range(self, small_dataset):
        with pytest.raises(DatasetError):
            small_dataset.split(10)

    def test_summary_contains_statistics(self, small_dataset):
        summary = small_dataset.summary()
        assert summary["nodes"] == small_dataset.num_nodes
        assert summary["classes"] == small_dataset.num_classes

    def test_out_of_range_split_indices_rejected(self, small_heterophilous_graph):
        bad_split = Split(train=np.array([10_000]), val=np.array([1]), test=np.array([2]))
        with pytest.raises(DatasetError):
            Dataset(graph=small_heterophilous_graph, splits=[bad_split], name="bad")
