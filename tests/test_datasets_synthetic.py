"""Tests for the feature-conditioned SBM generator."""

import numpy as np
import pytest

from repro.datasets.synthetic import SyntheticGraphConfig, generate_synthetic_graph
from repro.errors import DatasetError
from repro.graphs.homophily import edge_homophily, node_homophily


def _config(**overrides) -> SyntheticGraphConfig:
    base = dict(num_nodes=400, num_classes=4, num_features=16,
                average_degree=6.0, homophily=0.3, name="test")
    base.update(overrides)
    return SyntheticGraphConfig(**base)


class TestConfigValidation:
    def test_rejects_too_few_nodes(self):
        with pytest.raises(DatasetError):
            _config(num_nodes=1)

    def test_rejects_single_class(self):
        with pytest.raises(DatasetError):
            _config(num_classes=1)

    def test_rejects_more_classes_than_nodes(self):
        with pytest.raises(DatasetError):
            _config(num_nodes=3, num_classes=4)

    def test_rejects_bad_homophily(self):
        with pytest.raises(DatasetError):
            _config(homophily=1.5)

    def test_rejects_negative_degree(self):
        with pytest.raises(DatasetError):
            _config(average_degree=-1.0)

    def test_rejects_bad_structure_signal(self):
        with pytest.raises(DatasetError):
            _config(structure_signal=2.0)

    def test_scaled_preserves_everything_but_size(self):
        config = _config()
        scaled = config.scaled(0.5)
        assert scaled.num_nodes == 200
        assert scaled.num_classes == config.num_classes
        assert scaled.homophily == config.homophily

    def test_scaled_rejects_nonpositive_factor(self):
        with pytest.raises(DatasetError):
            _config().scaled(0.0)


class TestGeneratedGraph:
    def test_shapes(self):
        graph = generate_synthetic_graph(_config(), seed=0)
        assert graph.num_nodes == 400
        assert graph.features.shape == (400, 16)
        assert graph.labels.shape == (400,)
        assert graph.num_classes == 4

    def test_deterministic_given_seed(self):
        a = generate_synthetic_graph(_config(), seed=5)
        b = generate_synthetic_graph(_config(), seed=5)
        assert (a.adjacency != b.adjacency).nnz == 0
        np.testing.assert_allclose(a.features, b.features)
        np.testing.assert_array_equal(a.labels, b.labels)

    def test_different_seeds_differ(self):
        a = generate_synthetic_graph(_config(), seed=1)
        b = generate_synthetic_graph(_config(), seed=2)
        assert (a.adjacency != b.adjacency).nnz > 0

    def test_no_isolated_nodes(self):
        graph = generate_synthetic_graph(_config(average_degree=2.0), seed=0)
        assert graph.degrees.min() >= 1

    def test_every_class_has_two_members(self):
        graph = generate_synthetic_graph(_config(class_imbalance=0.7), seed=0)
        counts = np.bincount(graph.labels, minlength=4)
        assert counts.min() >= 2

    def test_homophily_matches_target_low(self):
        graph = generate_synthetic_graph(_config(homophily=0.1), seed=0)
        assert edge_homophily(graph) == pytest.approx(0.1, abs=0.08)

    def test_homophily_matches_target_high(self):
        graph = generate_synthetic_graph(_config(homophily=0.8), seed=0)
        assert edge_homophily(graph) == pytest.approx(0.8, abs=0.08)

    def test_average_degree_close_to_target(self):
        graph = generate_synthetic_graph(_config(average_degree=8.0, num_nodes=600), seed=0)
        assert graph.average_degree == pytest.approx(8.0, rel=0.3)

    def test_feature_signal_zero_gives_uninformative_features(self):
        graph = generate_synthetic_graph(_config(feature_signal=0.0), seed=0)
        # Class-mean feature vectors should be statistically indistinguishable.
        means = np.stack([graph.features[graph.labels == c].mean(axis=0)
                          for c in range(4)])
        assert np.abs(means).max() < 0.5

    def test_feature_signal_separates_classes(self):
        graph = generate_synthetic_graph(_config(feature_signal=3.0), seed=0)
        means = np.stack([graph.features[graph.labels == c].mean(axis=0)
                          for c in range(4)])
        distances = np.linalg.norm(means[0] - means[1])
        assert distances > 1.0
