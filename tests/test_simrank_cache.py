"""Round-trip / invalidation / corruption suite for the operator cache.

Covers the persistent SimRank operator cache of
:mod:`repro.simrank.cache`: hit/miss round trips through
``simrank_operator``, key sensitivity in every keyed dimension, versioned
invalidation, corruption eviction, and the end-to-end acceptance check —
a warm cache makes a repeated Fig. 5 run skip LocalPush precompute,
asserted via the shared cache-hit counter.

The suite drives the pipeline through the supported config API
(``SimRankConfig`` with ``cache_dir``); the ``_operator`` helper maps the
historical keyword spellings of the assertions onto it.
"""

import json
import zipfile

import numpy as np
import pytest

from repro.config import SIGMA_DEFAULT_SIMRANK, SimRankConfig
from repro.datasets.synthetic import SyntheticGraphConfig, generate_synthetic_graph
from repro.experiments import run_experiment
from repro.experiments.common import QUICK_EXPERIMENT_CONFIG
from repro.graphs.graph import Graph
from repro.simrank.cache import (
    CACHE_FORMAT_VERSION,
    OperatorCache,
    get_operator_cache,
    graph_fingerprint,
)
from repro.simrank.topk import simrank_operator


def _operator(graph, *, cache=None, cache_max_bytes=None, num_workers=None,
              **fields):
    """``simrank_operator`` via the config API, with a cache handle."""
    if num_workers is not None:
        fields["workers"] = num_workers
    config = SimRankConfig(**fields)
    if cache is not None:
        directory = cache.directory if isinstance(cache, OperatorCache) else cache
        config = config.with_overrides(cache_dir=str(directory),
                                       cache_max_bytes=cache_max_bytes)
    return simrank_operator(graph, config)


@pytest.fixture()
def graph() -> Graph:
    config = SyntheticGraphConfig(
        num_nodes=120, num_classes=3, num_features=4, average_degree=6.0,
        homophily=0.3, name="cache-sbm")
    return generate_synthetic_graph(config, seed=0)


@pytest.fixture()
def cache(tmp_path) -> OperatorCache:
    # Via the registry so the instance the pipeline resolves from
    # ``cache_dir`` is this one (shared counters).
    return get_operator_cache(tmp_path / "operators")


class TestGraphFingerprint:
    def test_stable_and_name_independent(self, graph):
        renamed = Graph(graph.adjacency.copy(), features=graph.features,
                        labels=graph.labels, name="other-name")
        assert graph_fingerprint(graph) == graph_fingerprint(renamed)

    def test_sensitive_to_topology_and_weights(self, graph):
        reference = graph_fingerprint(graph)
        dense = graph.adjacency.toarray()
        rows, cols = np.nonzero(np.triu(dense, k=1))
        dense[rows[0], cols[0]] = dense[cols[0], rows[0]] = 0.0
        assert graph_fingerprint(Graph(dense)) != reference
        reweighted = graph.adjacency.copy()
        reweighted.data = reweighted.data * 2.0
        assert graph_fingerprint(Graph(reweighted)) != reference


class TestKeying:
    def test_key_varies_per_parameter(self, graph, cache):
        base = dict(method="localpush", decay=0.6, epsilon=0.1, top_k=8,
                    row_normalize=False, backend="sharded")
        reference = cache.key_for(graph, **base)
        for variation in (dict(epsilon=0.05), dict(decay=0.7), dict(top_k=16),
                          dict(top_k=None), dict(backend="vectorized"),
                          dict(method="series"), dict(row_normalize=True)):
            assert cache.key_for(graph, **{**base, **variation}) != reference

    def test_key_varies_per_graph(self, graph, cache):
        other = generate_synthetic_graph(SyntheticGraphConfig(
            num_nodes=120, num_classes=3, num_features=4, average_degree=6.0,
            homophily=0.3, name="cache-sbm"), seed=1)
        params = dict(method="localpush", decay=0.6, epsilon=0.1, top_k=8,
                      row_normalize=False, backend="sharded")
        assert cache.key_for(graph, **params) != cache.key_for(other, **params)

    def test_registry_shares_instances_and_counters(self, tmp_path):
        first = get_operator_cache(tmp_path / "shared")
        second = get_operator_cache(tmp_path / "shared")
        assert first is second


class TestRoundTrip:
    def test_miss_store_hit(self, graph, cache):
        kwargs = dict(method="localpush", epsilon=0.1, top_k=8,
                      backend="sharded", cache=cache)
        cold = _operator(graph, **kwargs)
        assert not cold.cache_hit
        assert (cache.misses, cache.stores, cache.hits) == (1, 1, 0)
        assert len(cache) == 1

        warm = _operator(graph, **kwargs)
        assert warm.cache_hit
        assert cache.hits == 1
        assert warm.method == cold.method == "localpush"
        assert warm.backend == cold.backend == "sharded"
        assert warm.epsilon == cold.epsilon and warm.top_k == cold.top_k
        assert np.array_equal(warm.matrix.indptr, cold.matrix.indptr)
        assert np.array_equal(warm.matrix.indices, cold.matrix.indices)
        assert np.array_equal(warm.matrix.data, cold.matrix.data)

    def test_cache_accepts_directory_path(self, graph, tmp_path):
        directory = tmp_path / "by-path"
        cold = _operator(graph, method="localpush", epsilon=0.1,
                                top_k=4, cache=directory)
        warm = _operator(graph, method="localpush", epsilon=0.1,
                                top_k=4, cache=str(directory))
        assert not cold.cache_hit and warm.cache_hit
        assert get_operator_cache(directory).hits == 1

    def test_worker_count_shares_one_entry(self, graph, cache):
        """num_workers is excluded from the key: sharded is deterministic."""
        cold = _operator(graph, method="localpush", epsilon=0.1, top_k=8,
                                backend="sharded", num_workers=1, cache=cache)
        warm = _operator(graph, method="localpush", epsilon=0.1, top_k=8,
                                backend="sharded", num_workers=4, cache=cache)
        assert not cold.cache_hit and warm.cache_hit
        assert len(cache) == 1

    def test_different_epsilon_is_a_miss(self, graph, cache):
        _operator(graph, method="localpush", epsilon=0.1, top_k=8,
                         cache=cache)
        second = _operator(graph, method="localpush", epsilon=0.05,
                                  top_k=8, cache=cache)
        assert not second.cache_hit
        assert cache.hits == 0 and cache.stores == 2

    def test_row_normalize_is_keyed_and_verified(self, graph, cache):
        raw = _operator(graph, method="localpush", epsilon=0.1,
                               top_k=8, cache=cache)
        normalized = _operator(graph, method="localpush", epsilon=0.1,
                                      top_k=8, row_normalize=True, cache=cache)
        assert not normalized.cache_hit  # separate key, no false hit
        assert normalized.row_normalize and not raw.row_normalize
        warm = _operator(graph, method="localpush", epsilon=0.1,
                                top_k=8, row_normalize=True, cache=cache)
        assert warm.cache_hit and warm.row_normalize
        sums = np.asarray(warm.matrix.sum(axis=1)).ravel()
        np.testing.assert_allclose(sums[sums > 0], 1.0)

    def test_series_method_round_trips(self, graph, cache):
        cold = _operator(graph, method="series", epsilon=0.1, cache=cache)
        warm = _operator(graph, method="series", epsilon=0.1, cache=cache)
        assert warm.cache_hit
        assert warm.method == "series" and warm.backend is None
        np.testing.assert_allclose(warm.matrix.toarray(), cold.matrix.toarray())

    def test_clear_empties_the_directory(self, graph, cache):
        _operator(graph, method="localpush", epsilon=0.1, top_k=4,
                         cache=cache)
        assert cache.clear() == 1
        assert len(cache) == 0


class TestRowLookup:
    """``lookup_row``: cached all-pairs entries answer single-source
    queries (the ``cached`` rung of ``repro.serve``), counted in the
    separate ``row_hits``/``row_misses`` pair so the operator-level
    ``hits == exact_hits + reuse_hits`` invariant is untouched."""

    def test_row_hit_from_dominating_entry(self, graph, cache):
        # Prime with a tighter, un-truncated all-pairs entry …
        _operator(graph, method="localpush", epsilon=0.05, top_k=None,
                  cache=cache)
        assert (cache.misses, cache.stores) == (1, 1)
        served = cache.lookup_row(graph, 3, decay=0.6, epsilon=0.1,
                                  top_k=5, row_normalize=False)
        assert served is not None
        row, entry_epsilon = served
        assert entry_epsilon == 0.05  # the bound the row actually satisfies
        assert row.shape == (1, graph.num_nodes)
        # Counted only in the row pair; the operator counters (and their
        # hits == exact + reuse invariant) are untouched.
        assert (cache.row_hits, cache.row_misses) == (1, 0)
        assert cache.hits == cache.exact_hits + cache.reuse_hits == 0
        assert cache.misses == 1

        # The row equals slicing a full operator-level reuse of the same
        # contract — lookup_row is that reuse at O(row) cost.
        reused = _operator(graph, method="localpush", epsilon=0.1, top_k=5,
                           cache=cache)
        assert reused.cache_hit
        reference = reused.matrix.getrow(3)
        assert np.array_equal(row.indptr, reference.indptr)
        assert np.array_equal(row.indices, reference.indices)
        assert np.array_equal(row.data, reference.data)  # bitwise

    def test_row_miss_when_no_entry_dominates(self, graph, cache):
        _operator(graph, method="localpush", epsilon=0.1, top_k=4,
                  cache=cache)
        # Different decay, tighter ε and smaller stored k all miss.
        assert cache.lookup_row(graph, 3, decay=0.8, epsilon=0.1,
                                top_k=4, row_normalize=False) is None
        assert cache.lookup_row(graph, 3, decay=0.6, epsilon=0.05,
                                top_k=4, row_normalize=False) is None
        assert cache.lookup_row(graph, 3, decay=0.6, epsilon=0.1,
                                top_k=8, row_normalize=False) is None
        assert (cache.row_hits, cache.row_misses) == (0, 3)

    def test_row_lookup_validates_the_source(self, graph, cache):
        from repro.errors import SimRankError

        with pytest.raises(SimRankError):
            cache.lookup_row(graph, graph.num_nodes, decay=0.6, epsilon=0.1,
                             top_k=4, row_normalize=False)
        with pytest.raises(SimRankError):
            cache.lookup_row(graph, -1, decay=0.6, epsilon=0.1,
                             top_k=4, row_normalize=False)


class TestInvalidationAndCorruption:
    KWARGS = dict(method="localpush", epsilon=0.1, top_k=8, backend="sharded")

    def _entry_path(self, cache):
        paths = list(cache.directory.glob("simrank-*.npz"))
        assert len(paths) == 1
        return paths[0]

    def test_version_mismatch_evicts_and_recomputes(self, graph, cache):
        _operator(graph, cache=cache, **self.KWARGS)
        path = self._entry_path(cache)
        # Rewrite the stored metadata with a stale format version, keeping
        # the arrays intact — exactly what an old-format file looks like.
        with np.load(path, allow_pickle=False) as payload:
            arrays = {name: payload[name] for name in payload.files}
        meta = json.loads(str(arrays["meta"]))
        meta["version"] = CACHE_FORMAT_VERSION - 1
        arrays["meta"] = np.asarray(json.dumps(meta))
        np.savez_compressed(path, **arrays)

        refreshed = _operator(graph, cache=cache, **self.KWARGS)
        assert not refreshed.cache_hit
        assert cache.evictions == 1
        # The stale file was replaced by a fresh one that now hits.
        assert _operator(graph, cache=cache, **self.KWARGS).cache_hit

    def test_metadata_mismatch_evicts(self, graph, cache):
        _operator(graph, cache=cache, **self.KWARGS)
        path = self._entry_path(cache)
        with np.load(path, allow_pickle=False) as payload:
            arrays = {name: payload[name] for name in payload.files}
        meta = json.loads(str(arrays["meta"]))
        meta["epsilon"] = 0.99  # tampered: no longer matches the request
        arrays["meta"] = np.asarray(json.dumps(meta))
        np.savez_compressed(path, **arrays)

        refreshed = _operator(graph, cache=cache, **self.KWARGS)
        assert not refreshed.cache_hit
        assert cache.evictions == 1

    def test_truncated_file_evicts_and_recomputes(self, graph, cache):
        cold = _operator(graph, cache=cache, **self.KWARGS)
        path = self._entry_path(cache)
        path.write_bytes(path.read_bytes()[:20])  # no longer a valid zip

        refreshed = _operator(graph, cache=cache, **self.KWARGS)
        assert not refreshed.cache_hit
        assert cache.evictions == 1
        np.testing.assert_allclose(refreshed.matrix.toarray(),
                                   cold.matrix.toarray())
        assert _operator(graph, cache=cache, **self.KWARGS).cache_hit

    def test_garbage_bytes_evict(self, graph, cache):
        _operator(graph, cache=cache, **self.KWARGS)
        path = self._entry_path(cache)
        path.write_bytes(b"this is not an npz archive")
        assert _operator(graph, cache=cache, **self.KWARGS).cache_hit is False
        assert cache.evictions == 1

    def test_missing_array_evicts(self, graph, cache):
        _operator(graph, cache=cache, **self.KWARGS)
        path = self._entry_path(cache)
        with np.load(path, allow_pickle=False) as payload:
            arrays = {name: payload[name] for name in payload.files}
        del arrays["indices"]
        np.savez_compressed(path, **arrays)
        assert _operator(graph, cache=cache, **self.KWARGS).cache_hit is False
        assert cache.evictions == 1

    def test_stored_file_is_a_plain_zip(self, graph, cache):
        """The on-disk entry stays inspectable with stock tooling."""
        _operator(graph, cache=cache, **self.KWARGS)
        with zipfile.ZipFile(self._entry_path(cache)) as archive:
            names = set(archive.namelist())
        assert {"data.npy", "indices.npy", "indptr.npy",
                "shape.npy", "meta.npy"} <= names


class TestExperimentIntegration:
    """Acceptance criterion: a warm cache skips Fig. 5 precompute."""

    FIG5_KWARGS = dict(num_sizes=1, base_scale=0.05, models=("sigma",),
                       config=QUICK_EXPERIMENT_CONFIG, seed=0)

    def test_fig5_warm_cache_skips_precompute(self, tmp_path):
        directory = tmp_path / "fig5-cache"
        cache = get_operator_cache(directory)
        simrank = SIGMA_DEFAULT_SIMRANK.with_overrides(cache_dir=str(directory))

        cold = run_experiment("fig5", simrank=simrank, print_result=False,
                              **self.FIG5_KWARGS)
        assert cache.hits == 0 and cache.stores == 1

        warm = run_experiment("fig5", simrank=simrank, print_result=False,
                              **self.FIG5_KWARGS)
        # The repeated run was served entirely from the cache …
        assert cache.hits == 1
        assert cache.stores == 1  # … and did not recompute anything.

        cold_precompute = cold.points[0].precompute_seconds
        warm_precompute = warm.points[0].precompute_seconds
        assert warm_precompute < cold_precompute

    def test_table3_measured_precompute_uses_cache(self, tmp_path):
        directory = tmp_path / "table3-cache"
        kwargs = dict(scale_factor=0.05, measure_precompute=True,
                      simrank=SimRankConfig(cache_dir=str(directory)))
        run_experiment("table3", "pokec", print_result=False, **kwargs)
        run_experiment("table3", "pokec", print_result=False, **kwargs)
        assert get_operator_cache(directory).hits == 1

    def test_cli_exposes_cache_and_worker_flags(self):
        from repro.cli import build_parser

        args = build_parser().parse_args([
            "--simrank-backend", "sharded",
            "--simrank-workers", "4",
            "--simrank-cache-dir", "/tmp/simrank-cache",
        ])
        assert args.simrank_backend == "sharded"
        assert args.simrank_workers == 4
        assert args.simrank_cache_dir == "/tmp/simrank-cache"

    def test_cli_rejects_simrank_flags_for_non_sigma_models(self, capsys):
        from repro.cli import main

        with pytest.raises(SystemExit):
            main(["--model", "glognn", "--dataset", "texas",
                  "--simrank-workers", "2"])
        assert "only supported by SIGMA models" in capsys.readouterr().err


@pytest.mark.slow
class TestCacheStress:
    def test_large_operator_round_trip(self, tmp_path):
        graph = generate_synthetic_graph(SyntheticGraphConfig(
            num_nodes=2000, num_classes=3, num_features=4, average_degree=6.0,
            homophily=0.3, name="cache-large"), seed=3)
        cache = get_operator_cache(tmp_path / "large")
        kwargs = dict(method="localpush", epsilon=0.1, top_k=16,
                      backend="sharded", cache=cache)
        cold = _operator(graph, **kwargs)
        warm = _operator(graph, **kwargs)
        assert warm.cache_hit
        assert np.array_equal(warm.matrix.data, cold.matrix.data)
        assert warm.precompute_seconds < cold.precompute_seconds
