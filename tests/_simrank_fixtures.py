"""Shared graph builders for the LocalPush backend equivalence suites.

Used by ``test_simrank_localpush_vec.py`` and ``test_simrank_sharded.py``
so the oracle-equivalence fixtures cannot drift apart between suites.
Kept out of ``conftest.py`` because these are plain builders parameterised
at the call site, not pytest fixtures.
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp

from repro.datasets.synthetic import SyntheticGraphConfig, generate_synthetic_graph
from repro.graphs.graph import Graph


def erdos_renyi(n: int, p: float, seed: int) -> Graph:
    rng = np.random.default_rng(seed)
    upper = rng.random((n, n)) < p
    rows, cols = np.nonzero(np.triu(upper, k=1))
    return Graph.from_edges(n, np.stack([rows, cols], axis=1), name=f"er{n}")


def sbm(n: int, seed: int, homophily: float = 0.25) -> Graph:
    config = SyntheticGraphConfig(
        num_nodes=n, num_classes=3, num_features=4, average_degree=6.0,
        homophily=homophily, name=f"sbm{n}")
    return generate_synthetic_graph(config, seed=seed)


def star(num_leaves: int) -> Graph:
    edges = [(0, leaf) for leaf in range(1, num_leaves + 1)]
    return Graph.from_edges(num_leaves + 1, edges, name="star")


def weighted(n: int, seed: int, density: float = 0.15) -> Graph:
    """Random integer-weighted graph (exercises weighted-degree walks)."""
    rng = np.random.default_rng(seed)
    upper = np.triu(rng.integers(0, 5, size=(n, n)) * (rng.random((n, n)) < density), k=1)
    return Graph(sp.csr_matrix(upper + upper.T), name=f"weighted{n}")


def with_isolated(seed: int = 7) -> Graph:
    """An ER core plus five isolated nodes appended at the end."""
    core = erdos_renyi(40, 0.1, seed)
    n = core.num_nodes + 5
    adjacency = sp.lil_matrix((n, n))
    adjacency[:core.num_nodes, :core.num_nodes] = core.adjacency
    return Graph(adjacency.tocsr(), name="er+isolated")


def disconnected(seed: int = 7) -> Graph:
    """Two ER components of different sizes plus five isolated nodes."""
    a = erdos_renyi(30, 0.15, seed)
    b = erdos_renyi(20, 0.2, seed + 1)
    n = a.num_nodes + b.num_nodes + 5
    adjacency = sp.lil_matrix((n, n))
    adjacency[:30, :30] = a.adjacency
    adjacency[30:50, 30:50] = b.adjacency
    return Graph(adjacency.tocsr(), name="disconnected")
