"""Suite for the public facade (`repro.api`)."""

import numpy as np
import pytest

from repro import api
from repro.config import RunSpec, SimRankConfig
from repro.errors import ConfigError
from repro.models.sigma import SIGMA
from repro.simrank.topk import simrank_operator
from repro.training.config import TrainConfig

SMOKE_TRAIN = TrainConfig(max_epochs=12, patience=6, min_epochs=2,
                          track_test_history=False)


class TestPrecompute:
    def test_matches_simrank_operator(self, small_heterophilous_graph):
        config = SimRankConfig(method="localpush", epsilon=0.1, top_k=8)
        via_api = api.precompute(small_heterophilous_graph, config)
        direct = simrank_operator(small_heterophilous_graph, config)
        assert np.array_equal(via_api.matrix.toarray(), direct.matrix.toarray())

    def test_default_config(self, tiny_graph):
        operator = api.precompute(tiny_graph)
        assert operator.matrix.shape == (6, 6)


class TestBuildModel:
    def test_by_name_with_simrank(self, small_heterophilous_graph):
        model = api.build_model("sigma", small_heterophilous_graph,
                                simrank=SimRankConfig(top_k=8), hidden=8,
                                rng=0)
        assert isinstance(model, SIGMA)
        assert model.simrank_config.top_k == 8

    def test_from_spec(self, small_heterophilous_graph):
        spec = RunSpec(model="sigma", overrides={"hidden": 8},
                       simrank=SimRankConfig(top_k=8))
        model = api.build_model(None, small_heterophilous_graph, spec=spec,
                                rng=0)
        assert isinstance(model, SIGMA)
        assert model.hidden == 8
        assert model.simrank_config.top_k == 8

    def test_explicit_overrides_beat_spec(self, small_heterophilous_graph):
        spec = RunSpec(model="sigma", overrides={"hidden": 8},
                       simrank=SimRankConfig(top_k=8))
        model = api.build_model(None, small_heterophilous_graph, spec=spec,
                                rng=0, hidden=16)
        assert model.hidden == 16

    def test_simrank_for_baseline_rejected(self, small_heterophilous_graph):
        with pytest.raises(ConfigError, match="glognn"):
            api.build_model("glognn", small_heterophilous_graph,
                            simrank=SimRankConfig())

    def test_name_required_without_spec(self, small_heterophilous_graph):
        with pytest.raises(ConfigError, match="model name"):
            api.build_model(None, small_heterophilous_graph)


class TestRun:
    def test_baseline_end_to_end(self):
        spec = RunSpec(model="mlp", dataset="texas", repeats=1,
                       overrides={"hidden": 16}, train=SMOKE_TRAIN)
        result = api.run(spec)
        assert result.spec is spec
        assert 0.0 <= result.summary.mean_accuracy <= 1.0
        row = result.as_row()
        assert row["model"] == "mlp" and row["dataset"] == "texas"

    def test_sigma_with_config_end_to_end(self):
        spec = RunSpec(model="sigma", dataset="texas", repeats=1,
                       overrides={"hidden": 16}, train=SMOKE_TRAIN,
                       simrank=SimRankConfig(top_k=8))
        result = api.run(spec)
        assert result.summary.mean_precompute_time > 0.0

    def test_result_to_dict_embeds_the_spec(self):
        spec = RunSpec(model="mlp", dataset="texas", repeats=1,
                       overrides={"hidden": 16}, train=SMOKE_TRAIN)
        payload = api.run(spec).to_dict()
        assert payload["spec"]["model"] == "mlp"
        assert payload["spec"]["train"]["max_epochs"] == 12
        assert "accuracy_mean" in payload
