"""Case study: why global SimRank aggregation helps under heterophily.

Scenario: classifying pages of a Wikipedia-like web graph (the paper's
Chameleon benchmark) where linked pages usually belong to *different*
categories.  The script

1. measures the graph's homophily,
2. shows that SimRank scores separate intra-class from inter-class pairs
   (the paper's Table II / Fig. 2 argument),
3. contrasts how much aggregation weight PPR (local) and SimRank (global)
   put on same-label nodes (Fig. 1), and
4. trains GCN, LINKX and SIGMA to show the accuracy consequence.
"""

from __future__ import annotations

from repro import (TrainConfig, Trainer, create_model, exact_simrank,
                   load_dataset, simrank_class_statistics)
from repro.experiments import run_experiment
from repro.graphs import node_homophily


def main() -> None:
    dataset = load_dataset("chameleon", seed=0)
    graph = dataset.graph

    print("1) graph heterophily")
    print(f"   node homophily = {node_homophily(graph):.2f} "
          "(well below 0.5: most neighbours have a different label)\n")

    print("2) SimRank separates intra- from inter-class pairs")
    scores = exact_simrank(graph)
    stats = simrank_class_statistics(graph, scores, num_pairs=10000, seed=0)
    print(f"   intra-class SimRank: {stats.intra_mean:.3f} ± {stats.intra_std:.3f}")
    print(f"   inter-class SimRank: {stats.inter_mean:.3f} ± {stats.inter_std:.3f}\n")

    print("3) aggregation mass on same-label nodes (PPR vs SimRank)")
    fig1 = run_experiment("fig1", "chameleon", num_centers=8, seed=0,
                          print_result=False)
    print(f"   PPR    : {fig1.mean_same_label_mass('ppr'):.3f}")
    print(f"   SimRank: {fig1.mean_same_label_mass('simrank'):.3f}\n")

    print("4) downstream accuracy")
    config = TrainConfig(max_epochs=200, patience=50, weight_decay=1e-3,
                         track_test_history=False)
    for model_name, overrides in (("gcn", {}), ("linkx", {}),
                                  ("sigma", {"delta": 0.3, "final_layers": 2})):
        model = create_model(model_name, graph, rng=0, **overrides)
        result = Trainer(model, config).fit(dataset.split(0))
        print(f"   {model_name:6s} test accuracy = {result.test_accuracy:.3f}")


if __name__ == "__main__":
    main()
