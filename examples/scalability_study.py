"""Scalability study: SIGMA's one-shot aggregation vs iterative GloGNN.

Generates a family of social-network-like graphs of growing size (the
paper's pokec generator) and measures, for SIGMA and GloGNN,

* the SimRank precomputation time (SIGMA only),
* the per-run learning time, and
* the speed-up of SIGMA over GloGNN as the graph grows —

reproducing the trend of the paper's Fig. 5 at laptop scale.

LocalPush (engine, executor) selection
--------------------------------------
SIGMA's precompute column is dominated by LocalPush (Algorithm 1).  Two
engines implement it, and the batched one takes a pluggable *executor*
(``simrank_executor``) for its per-round shard pushes:

* ``simrank_backend="dict"`` — the per-pair reference loop (correctness
  oracle for the test suite);
* the unified core (:mod:`repro.simrank.engine`) — frontier-batched
  rounds ``R ← R + c·Wᵀ F W`` with deterministic frontier sharding and
  streaming top-k pruning, 10–25× faster at these sizes (see
  ``BENCH_localpush.json``, produced by ``benchmarks/bench_localpush.py``),
  executed by:

  - ``simrank_executor="serial"`` — shards pushed in the calling thread
    (the legacy ``backend="vectorized"`` configuration);
  - ``simrank_executor="thread"`` — a thread pool (legacy
    ``backend="sharded"``; scipy's matmul holds the GIL, so gains are
    modest on CPython);
  - ``simrank_executor="process"`` — a process pool sharing the walk
    matrix via ``multiprocessing.shared_memory`` — true multi-core
    scaling (``simrank_workers`` sizes the pool).

Every executor and worker count produces a **bit-identical** operator,
and all plans share the ``(1 − c)·ε`` stopping rule and the
``‖Ŝ − S‖_max < ε`` guarantee, so accuracy is unaffected by the choice;
``simrank_backend="auto"`` (default) picks dict below 256 nodes and the
unified core above.  Pass ``simrank_cache_dir`` to persist operators
across runs — a warm cache skips the precompute column entirely, and a
looser-ε run can even be served from a tighter-ε entry by the cache's
cross-ε reuse.
"""

from __future__ import annotations

import argparse

from repro.experiments.fig5_scalability import run as run_fig5
from repro.experiments.common import format_table


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--executor", default=None,
                        choices=("serial", "thread", "process", "auto"),
                        help="unified-core executor for the LocalPush "
                             "precompute (default: auto)")
    parser.add_argument("--workers", type=int, default=None,
                        help="pool size for the thread/process executors")
    parser.add_argument("--cache-dir", default=None,
                        help="persistent operator cache directory")
    args = parser.parse_args()

    result = run_fig5(base_dataset="pokec", num_sizes=4, shrink=2.0,
                      base_scale=0.5, seed=0, simrank_backend="auto",
                      simrank_executor=args.executor,
                      simrank_workers=args.workers,
                      simrank_cache_dir=args.cache_dir)
    print("learning time across graph sizes")
    print(format_table(result.rows()))
    print("\nSIGMA speed-up over GloGNN by graph size:")
    for edges, ratio in result.speedup_trend():
        print(f"  edges={edges:7d}: {ratio:.2f}x")


if __name__ == "__main__":
    main()
