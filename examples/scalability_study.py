"""Scalability study: SIGMA's one-shot aggregation vs iterative GloGNN.

Generates a family of social-network-like graphs of growing size (the
paper's pokec generator) and measures, for SIGMA and GloGNN,

* the SimRank precomputation time (SIGMA only),
* the per-run learning time, and
* the speed-up of SIGMA over GloGNN as the graph grows —

reproducing the trend of the paper's Fig. 5 at laptop scale.

LocalPush backend selection
---------------------------
SIGMA's precompute column is dominated by LocalPush (Algorithm 1), which
ships with three engines selected by ``simrank_backend``:

* ``"dict"`` — the per-pair reference loop (correctness oracle);
* ``"vectorized"`` — the frontier-batched array engine: each round absorbs
  the whole above-threshold frontier and pushes its mass in one sparse
  ``R ← R + c·Wᵀ F W`` step — 10–25× faster at these sizes (see
  ``BENCH_localpush.json``, produced by ``benchmarks/bench_localpush.py``);
* ``"sharded"`` — the vectorized rounds split into row shards executed by a
  worker pool (``simrank_workers``), with streaming top-k pruning inside
  the loop; bit-identical across worker counts;
* ``"auto"`` (default) — vectorized from 256 nodes, sharded from 4096.

All engines share the ``(1 − c)·ε`` stopping rule and the
``‖Ŝ − S‖_max < ε`` guarantee, so accuracy is unaffected by the choice.
Pass ``simrank_cache_dir`` to persist operators across runs — a warm cache
skips the precompute column entirely.
"""

from __future__ import annotations

from repro.experiments.fig5_scalability import run as run_fig5
from repro.experiments.common import format_table


def main() -> None:
    result = run_fig5(base_dataset="pokec", num_sizes=4, shrink=2.0,
                      base_scale=0.5, seed=0, simrank_backend="auto")
    print("learning time across graph sizes")
    print(format_table(result.rows()))
    print("\nSIGMA speed-up over GloGNN by graph size:")
    for edges, ratio in result.speedup_trend():
        print(f"  edges={edges:7d}: {ratio:.2f}x")


if __name__ == "__main__":
    main()
