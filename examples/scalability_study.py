"""Scalability study: SIGMA's one-shot aggregation vs iterative GloGNN.

Generates a family of social-network-like graphs of growing size (the
paper's pokec generator) and measures, for SIGMA and GloGNN,

* the SimRank precomputation time (SIGMA only),
* the per-run learning time, and
* the speed-up of SIGMA over GloGNN as the graph grows —

reproducing the trend of the paper's Fig. 5 at laptop scale.

Configuring the precompute
--------------------------
SIGMA's precompute column is dominated by LocalPush (Algorithm 1).  The
whole pipeline is configured by one object —
:class:`repro.config.SimRankConfig` — whose execution-plan fields map to
the flags of this script:

* ``backend`` — engine family: ``"dict"`` (per-pair reference loop, the
  correctness oracle) or the unified frontier-batched core
  (:mod:`repro.simrank.engine`), 10–25× faster at these sizes (see
  ``BENCH_localpush.json``, produced by ``benchmarks/bench_localpush.py``);
* ``executor`` — how the core's per-round shard pushes run:
  ``"serial"`` (in the calling thread), ``"thread"`` (a thread pool;
  scipy's matmul holds the GIL, so gains are modest on CPython) or
  ``"process"`` (a process pool sharing the walk matrix via
  ``multiprocessing.shared_memory`` — true multi-core scaling);
* ``workers`` — thread/process pool size;
* ``cache_dir`` / ``cache_max_bytes`` — the persistent operator cache: a
  warm cache skips the precompute column entirely, and a looser-ε run
  can even be served from a tighter-ε entry by the cache's cross-ε reuse.

Every executor and worker count produces a **bit-identical** operator,
and all plans share the ``(1 − c)·ε`` stopping rule and the
``‖Ŝ − S‖_max < ε`` guarantee, so accuracy is unaffected by the choice;
``backend="auto"`` (default) picks dict below 256 nodes and the unified
core above.
"""

from __future__ import annotations

import argparse

from repro.config import SIGMA_DEFAULT_SIMRANK
from repro.experiments import format_table, run_experiment


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--executor", default=None,
                        choices=("serial", "thread", "process", "auto"),
                        help="unified-core executor for the LocalPush "
                             "precompute (default: auto)")
    parser.add_argument("--workers", type=int, default=None,
                        help="pool size for the thread/process executors")
    parser.add_argument("--cache-dir", default=None,
                        help="persistent operator cache directory")
    args = parser.parse_args()

    simrank = SIGMA_DEFAULT_SIMRANK.with_overrides(
        executor=args.executor, workers=args.workers,
        cache_dir=args.cache_dir)
    result = run_experiment("fig5", base_dataset="pokec", num_sizes=4,
                            shrink=2.0, base_scale=0.5, seed=0,
                            simrank=simrank, print_result=False)
    print("learning time across graph sizes")
    print(format_table(result.rows()))
    print("\nSIGMA speed-up over GloGNN by graph size:")
    for edges, ratio in result.speedup_trend():
        print(f"  edges={edges:7d}: {ratio:.2f}x")


if __name__ == "__main__":
    main()
