"""Scalability study: SIGMA's one-shot aggregation vs iterative GloGNN.

Generates a family of social-network-like graphs of growing size (the
paper's pokec generator) and measures, for SIGMA and GloGNN,

* the SimRank precomputation time (SIGMA only),
* the per-run learning time, and
* the speed-up of SIGMA over GloGNN as the graph grows —

reproducing the trend of the paper's Fig. 5 at laptop scale.
"""

from __future__ import annotations

from repro.experiments.fig5_scalability import run as run_fig5
from repro.experiments.common import format_table


def main() -> None:
    result = run_fig5(base_dataset="pokec", num_sizes=4, shrink=2.0,
                      base_scale=0.5, seed=0)
    print("learning time across graph sizes")
    print(format_table(result.rows()))
    print("\nSIGMA speed-up over GloGNN by graph size:")
    for edges, ratio in result.speedup_trend():
        print(f"  edges={edges:7d}: {ratio:.2f}x")


if __name__ == "__main__":
    main()
