"""Using SIGMA on your own graph.

This example builds a small co-purchase-style graph from scratch (an edge
list plus node features and labels), wraps it in the library's ``Graph`` and
``Dataset`` containers, and trains SIGMA on it — the workflow a downstream
user would follow with their own data.
"""

from __future__ import annotations

import numpy as np

from repro import TrainConfig, Trainer, create_model
from repro.datasets import Dataset, stratified_splits
from repro.graphs import Graph, node_homophily


def build_toy_graph(num_nodes: int = 400, seed: int = 7) -> Graph:
    """A toy two-class heterophilous graph: edges mostly cross classes."""
    rng = np.random.default_rng(seed)
    labels = rng.integers(0, 2, size=num_nodes)
    edges = []
    for _ in range(num_nodes * 4):
        u = int(rng.integers(num_nodes))
        # 80% of edges connect to the *other* class (strong heterophily).
        if rng.random() < 0.8:
            candidates = np.flatnonzero(labels != labels[u])
        else:
            candidates = np.flatnonzero(labels == labels[u])
        v = int(rng.choice(candidates))
        if u != v:
            edges.append((u, v))
    centroids = rng.normal(size=(2, 16))
    features = centroids[labels] + 0.8 * rng.normal(size=(num_nodes, 16))
    return Graph.from_edges(num_nodes, edges, features=features, labels=labels,
                            name="toy-copurchase")


def main() -> None:
    graph = build_toy_graph()
    print(f"graph: {graph.num_nodes} nodes, {graph.num_edges} edges, "
          f"node homophily {node_homophily(graph):.2f}")

    splits = stratified_splits(graph.labels, num_splits=3, seed=1)
    dataset = Dataset(graph=graph, splits=splits, name="toy-copurchase")

    config = TrainConfig(max_epochs=150, patience=40, track_test_history=False)
    for model_name in ("gcn", "sigma"):
        accuracies = []
        for split_index in range(dataset.num_splits):
            model = create_model(model_name, graph, rng=split_index)
            result = Trainer(model, config).fit(dataset.split(split_index))
            accuracies.append(result.test_accuracy)
        mean = 100 * float(np.mean(accuracies))
        std = 100 * float(np.std(accuracies))
        print(f"{model_name:6s}: {mean:.1f} ± {std:.1f} % test accuracy")


if __name__ == "__main__":
    main()
