"""Quickstart: train SIGMA on a heterophilous benchmark and compare baselines.

Run with ``python examples/quickstart.py``.  The script loads the synthetic
stand-in for the Texas web-page graph (a small, strongly heterophilous
benchmark), trains SIGMA and two reference baselines, and prints test
accuracy together with SIGMA's timing breakdown.
"""

from __future__ import annotations

from repro import TrainConfig, Trainer, create_model, load_dataset
from repro.graphs import node_homophily


def main() -> None:
    dataset = load_dataset("texas", seed=0)
    graph = dataset.graph
    print(f"dataset: {dataset.name}  nodes={graph.num_nodes}  edges={graph.num_edges}  "
          f"classes={graph.num_classes}  node homophily={node_homophily(graph):.2f}")

    config = TrainConfig(max_epochs=200, patience=50, learning_rate=0.01,
                         weight_decay=1e-3, track_test_history=False)

    for model_name in ("mlp", "gcn", "sigma"):
        model = create_model(model_name, graph, rng=0)
        result = Trainer(model, config).fit(dataset.split(0))
        print(f"{model_name:6s} test accuracy = {result.test_accuracy:.3f}  "
              f"(best epoch {result.best_epoch}, learn time {result.learning_time:.2f}s)")

    # A closer look at SIGMA: the learned balance between local and global
    # aggregation and the cost of the SimRank precomputation.
    sigma = create_model("sigma", graph, rng=0)
    result = Trainer(sigma, config).fit(dataset.split(0))
    print("\nSIGMA details")
    print(f"  learned alpha (local/global balance): {sigma.alpha:.3f}")
    print(f"  SimRank precompute time: {result.timing.precompute:.3f}s")
    print(f"  aggregation time during training: {result.timing.aggregation:.3f}s")
    print(f"  stored SimRank entries per node: {sigma.simrank.average_entries_per_node:.1f}")


if __name__ == "__main__":
    main()
